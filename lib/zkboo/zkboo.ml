(* ZKBoo / ZKB++ non-interactive zero-knowledge proofs for Boolean circuits
   (Giacomelli–Madsen–Orlandi, with the ZKB++ seed-derived views of
   Chase et al.), in the random-oracle model via Fiat–Shamir.

   The prover runs a (2,3)-decomposition of the circuit "in the head":
   wire w is XOR-shared as w = w0 ⊕ w1 ⊕ w2.  Linear gates are local; an
   AND gate costs one communicated bit per party:

     z_j = x_j·y_j ⊕ x_{j+1}·y_j ⊕ x_j·y_{j+1} ⊕ R_j(c) ⊕ R_{j+1}(c)

   The prover commits to each party's view, derives per-repetition
   challenges e ∈ {0,1,2} by hashing the transcript, and opens views e and
   e+1.  Soundness error is (2/3)^t, so t = 137 repetitions give < 2^-80
   (the paper's setting).

   Performance: repetitions are evaluated in word-packed batches — lane l
   of a native int is repetition l, the OCaml analogue of the paper's
   "SIMD instructions with a bitwidth of 32".  The hot path is built for
   raw speed:

   - the circuit is compiled once into a flat [Larch_circuit.Plan]
     (opcode byte + operand-index arrays), so the packed evaluators
     stream through int arrays with unchecked access instead of
     dispatching on gate variants;
   - per-circuit scratch (wire/tape/AND-output words, tape staging, a
     SHA-256 context) lives in a pool and is reused across batches and
     proofs — the per-batch loop allocates only what ends up in the
     proof;
   - random tapes are expanded with [Prg.fill] straight into a flat
     staging buffer and transposed into lane words blockwise (and back
     out), keeping both passes cache-resident instead of striding a
     multi-hundred-KB word array once per repetition;
   - view commitments and Fiat–Shamir hashing stream through reusable
     SHA-256 contexts ([Sha256.reset]/[feed_sub]) in one per-batch pass;
   - the t repetitions are split into batches balanced across domains
     (near-equal lane counts, batch count a multiple of the domain
     budget) so no domain is left holding a 13-lane tail at ~20% load —
     the knob behind the client core-count sweep of Figure 3 (left).

   None of this changes a single proof byte: derivations, hash inputs and
   serialization are untouched, which the fixed-seed proof-digest KAT
   (test/test_zkboo_kat.ml, @zkboo ⊂ @smoke) pins down. *)

module Bytesx = Larch_util.Bytesx
module Circuit = Larch_circuit.Circuit
module Plan = Larch_circuit.Plan
module Trace = Larch_obs.Trace
module Sha256 = Larch_hash.Sha256

let default_reps = 137
let lanes = 62 (* repetitions packed per native int *)
let seed_len = 16

type response = {
  seed_e : string;
  seed_e1 : string;
  x2 : string option; (* party 2's explicit input share, when opened *)
  z_e1 : string; (* packed AND-gate outputs of party e+1 *)
}

type proof = {
  n_reps : int;
  commits : string array array; (* n_reps × 3 *)
  out_shares : string array array; (* n_reps × 3, packed output bits *)
  responses : response array;
}

let bytes_for_bits n = (n + 7) / 8

(* --- per-(repetition, party) randomness, derived from a 16-byte seed --- *)

let input_share_of_seed (seed : string) (n_in : int) : string =
  Larch_cipher.Prg.next_bytes (Larch_cipher.Prg.create (seed ^ "zkboo-input")) (bytes_for_bits n_in)

let tape_of_seed (seed : string) (n_and : int) : string =
  Larch_cipher.Prg.next_bytes (Larch_cipher.Prg.create (seed ^ "zkboo-tape")) (bytes_for_bits n_and)

(* Commitment to one party's view, streamed through a reusable context;
   byte-compatible with SHA256("zkboo-commit" ‖ seed ‖ x? ‖ z). *)
let commit_with (ctx : Sha256.ctx) ~(seed : string) ~(x_explicit : string option) ~(z : string) :
    string =
  Sha256.reset ctx;
  Sha256.feed ctx "zkboo-commit";
  Sha256.feed ctx seed;
  (match x_explicit with Some x -> Sha256.feed ctx x | None -> ());
  Sha256.feed ctx z;
  Sha256.finish ctx

(* --- bit packing: lane l of word i = bit i of repetition l --- *)

(* OR bit i of [s] into lane [lane] of words.(i), for i < n_bits.  Used
   for the short input shares; the long tapes go through the transposed
   [pack_flat] below. *)
let pack_into (words : int array) ~(lane : int) (s : string) (n_bits : int) : unit =
  let lane_bit = 1 lsl lane in
  let full_bytes = n_bits / 8 in
  for b = 0 to full_bytes - 1 do
    let v = Char.code (String.unsafe_get s b) in
    if v <> 0 then begin
      let base = 8 * b in
      if v land 0x01 <> 0 then words.(base) <- words.(base) lor lane_bit;
      if v land 0x02 <> 0 then words.(base + 1) <- words.(base + 1) lor lane_bit;
      if v land 0x04 <> 0 then words.(base + 2) <- words.(base + 2) lor lane_bit;
      if v land 0x08 <> 0 then words.(base + 3) <- words.(base + 3) lor lane_bit;
      if v land 0x10 <> 0 then words.(base + 4) <- words.(base + 4) lor lane_bit;
      if v land 0x20 <> 0 then words.(base + 5) <- words.(base + 5) lor lane_bit;
      if v land 0x40 <> 0 then words.(base + 6) <- words.(base + 6) lor lane_bit;
      if v land 0x80 <> 0 then words.(base + 7) <- words.(base + 7) lor lane_bit
    end
  done;
  for i = 8 * full_bytes to n_bits - 1 do
    if Bytesx.get_bit s i = 1 then words.(i) <- words.(i) lor lane_bit
  done

(* Transpose [count] rows of a flat staging buffer (row l at l·stride,
   [n_bits] bits each, LSB-first per byte) into lane words: words.(i) bit
   l = bit i of row l.  Processes one 8-word block per input byte column,
   so the word block stays in registers while the 62 row streams advance
   byte-by-byte — the cache-resident direction of the transpose.  Fully
   overwrites words.(0..n_bits-1); lanes ≥ count read as 0. *)
let pack_flat (words : int array) (flat : Bytes.t) ~(stride : int) ~(count : int) ~(n_bits : int) :
    unit =
  let full = n_bits / 8 in
  for b = 0 to full - 1 do
    let base = 8 * b in
    let r0 = ref 0 and r1 = ref 0 and r2 = ref 0 and r3 = ref 0 in
    let r4 = ref 0 and r5 = ref 0 and r6 = ref 0 and r7 = ref 0 in
    for l = 0 to count - 1 do
      let v = Char.code (Bytes.unsafe_get flat ((l * stride) + b)) in
      r0 := !r0 lor ((v land 1) lsl l);
      r1 := !r1 lor (((v lsr 1) land 1) lsl l);
      r2 := !r2 lor (((v lsr 2) land 1) lsl l);
      r3 := !r3 lor (((v lsr 3) land 1) lsl l);
      r4 := !r4 lor (((v lsr 4) land 1) lsl l);
      r5 := !r5 lor (((v lsr 5) land 1) lsl l);
      r6 := !r6 lor (((v lsr 6) land 1) lsl l);
      r7 := !r7 lor (((v lsr 7) land 1) lsl l)
    done;
    Array.unsafe_set words base !r0;
    Array.unsafe_set words (base + 1) !r1;
    Array.unsafe_set words (base + 2) !r2;
    Array.unsafe_set words (base + 3) !r3;
    Array.unsafe_set words (base + 4) !r4;
    Array.unsafe_set words (base + 5) !r5;
    Array.unsafe_set words (base + 6) !r6;
    Array.unsafe_set words (base + 7) !r7
  done;
  for i = 8 * full to n_bits - 1 do
    let b = i / 8 and sh = i land 7 in
    let r = ref 0 in
    for l = 0 to count - 1 do
      r := !r lor (((Char.code (Bytes.unsafe_get flat ((l * stride) + b)) lsr sh) land 1) lsl l)
    done;
    Array.unsafe_set words i !r
  done

(* The inverse transpose: lane words out to [count] per-repetition byte
   strings, blockwise (8 words held in registers per output byte column). *)
let unpack_all (words : int array) ~(count : int) ~(n_bits : int) : string array =
  let len = bytes_for_bits n_bits in
  let outs = Array.init count (fun _ -> Bytes.create len) in
  let full = n_bits / 8 in
  for b = 0 to full - 1 do
    let base = 8 * b in
    let w0 = Array.unsafe_get words base
    and w1 = Array.unsafe_get words (base + 1)
    and w2 = Array.unsafe_get words (base + 2)
    and w3 = Array.unsafe_get words (base + 3)
    and w4 = Array.unsafe_get words (base + 4)
    and w5 = Array.unsafe_get words (base + 5)
    and w6 = Array.unsafe_get words (base + 6)
    and w7 = Array.unsafe_get words (base + 7) in
    for l = 0 to count - 1 do
      let v =
        ((w0 lsr l) land 1)
        lor (((w1 lsr l) land 1) lsl 1)
        lor (((w2 lsr l) land 1) lsl 2)
        lor (((w3 lsr l) land 1) lsl 3)
        lor (((w4 lsr l) land 1) lsl 4)
        lor (((w5 lsr l) land 1) lsl 5)
        lor (((w6 lsr l) land 1) lsl 6)
        lor (((w7 lsr l) land 1) lsl 7)
      in
      Bytes.unsafe_set (Array.unsafe_get outs l) b (Char.unsafe_chr v)
    done
  done;
  if 8 * full < n_bits then begin
    for l = 0 to count - 1 do
      let v = ref 0 in
      for i = 8 * full to n_bits - 1 do
        v := !v lor (((Array.unsafe_get words i lsr l) land 1) lsl (i land 7))
      done;
      Bytes.unsafe_set (Array.unsafe_get outs l) full (Char.unsafe_chr !v)
    done
  end;
  Array.map Bytes.unsafe_to_string outs

(* --- per-circuit runtime: compiled plan + pooled scratch --- *)

type scratch = {
  w : int array array; (* 3 × n_wires wire words *)
  tw : int array array; (* 3 × n_and tape words (verify: tape_a/tape_b/zb) *)
  zw : int array array; (* 3 × n_and AND-output words *)
  inw : int array array; (* 3 × n_inputs input words *)
  tape_flat : Bytes.t; (* lanes × tape_len staging, one party at a time *)
  ctx : Sha256.ctx; (* commitment hashing *)
}

type rt = {
  plan : Plan.t;
  tape_len : int;
  lock : Mutex.t;
  mutable pool : scratch list;
}

let new_scratch (rt : rt) : scratch =
  let p = rt.plan in
  {
    w = Array.init 3 (fun _ -> Array.make (max 1 p.Plan.n_wires) 0);
    tw = Array.init 3 (fun _ -> Array.make (max 1 p.Plan.n_and) 0);
    zw = Array.init 3 (fun _ -> Array.make (max 1 p.Plan.n_and) 0);
    inw = Array.init 3 (fun _ -> Array.make (max 1 p.Plan.n_inputs) 0);
    tape_flat = Bytes.create (lanes * rt.tape_len);
    ctx = Sha256.init ();
  }

let with_scratch (rt : rt) (f : scratch -> 'a) : 'a =
  Mutex.lock rt.lock;
  let s =
    match rt.pool with
    | s :: rest ->
        rt.pool <- rest;
        Mutex.unlock rt.lock;
        s
    | [] ->
        Mutex.unlock rt.lock;
        new_scratch rt
  in
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock rt.lock;
      rt.pool <- s :: rt.pool;
      Mutex.unlock rt.lock)
    (fun () -> f s)

(* One runtime per circuit, keyed on physical equality like [Plan.cached]
   (the statement circuits are built once and shared). *)
let rt_cache : (Circuit.t * rt) list ref = ref []
let rt_cache_lock = Mutex.create ()
let rt_cache_cap = 8

let rt_of (c : Circuit.t) : rt =
  Mutex.lock rt_cache_lock;
  match List.find_opt (fun (c', _) -> c' == c) !rt_cache with
  | Some (_, rt) ->
      Mutex.unlock rt_cache_lock;
      rt
  | None ->
      Mutex.unlock rt_cache_lock;
      let plan = Plan.cached c in
      let rt =
        { plan; tape_len = bytes_for_bits plan.Plan.n_and; lock = Mutex.create (); pool = [] }
      in
      Mutex.lock rt_cache_lock;
      let keep = List.filteri (fun i _ -> i < rt_cache_cap - 1) !rt_cache in
      rt_cache := (c, rt) :: keep;
      Mutex.unlock rt_cache_lock;
      rt

(* --- three-party packed evaluation (prover side) over the flat plan ---

   Wire/tape/AND-output words come from scratch; input shares must already
   be packed in [s.inw].  Index safety: every operand index was validated
   by [Plan.of_circuit]. *)

let eval3 (p : Plan.t) (s : scratch) ~(mask : int) : unit =
  let ni = p.Plan.n_inputs in
  let w0 = s.w.(0) and w1 = s.w.(1) and w2 = s.w.(2) in
  Array.blit s.inw.(0) 0 w0 0 ni;
  Array.blit s.inw.(1) 0 w1 0 ni;
  Array.blit s.inw.(2) 0 w2 0 ni;
  let z0 = s.zw.(0) and z1 = s.zw.(1) and z2 = s.zw.(2) in
  let t0 = s.tw.(0) and t1 = s.tw.(1) and t2 = s.tw.(2) in
  let op = p.Plan.op and aa = p.Plan.arg_a and bb = p.Plan.arg_b and kk = p.Plan.and_k in
  for i = 0 to p.Plan.n_gates - 1 do
    let o = ni + i in
    let code = Char.code (Bytes.unsafe_get op i) in
    if code = 0 (* Xor *) then begin
      let a = Array.unsafe_get aa i and b = Array.unsafe_get bb i in
      Array.unsafe_set w0 o (Array.unsafe_get w0 a lxor Array.unsafe_get w0 b);
      Array.unsafe_set w1 o (Array.unsafe_get w1 a lxor Array.unsafe_get w1 b);
      Array.unsafe_set w2 o (Array.unsafe_get w2 a lxor Array.unsafe_get w2 b)
    end
    else if code = 1 (* And *) then begin
      let a = Array.unsafe_get aa i and b = Array.unsafe_get bb i in
      let k = Array.unsafe_get kk i in
      let x0 = Array.unsafe_get w0 a and y0 = Array.unsafe_get w0 b in
      let x1 = Array.unsafe_get w1 a and y1 = Array.unsafe_get w1 b in
      let x2 = Array.unsafe_get w2 a and y2 = Array.unsafe_get w2 b in
      let r0 = Array.unsafe_get t0 k and r1 = Array.unsafe_get t1 k and r2 = Array.unsafe_get t2 k in
      let v0 = x0 land y0 lxor (x1 land y0) lxor (x0 land y1) lxor r0 lxor r1 in
      let v1 = x1 land y1 lxor (x2 land y1) lxor (x1 land y2) lxor r1 lxor r2 in
      let v2 = x2 land y2 lxor (x0 land y2) lxor (x2 land y0) lxor r2 lxor r0 in
      Array.unsafe_set w0 o v0;
      Array.unsafe_set w1 o v1;
      Array.unsafe_set w2 o v2;
      Array.unsafe_set z0 k v0;
      Array.unsafe_set z1 k v1;
      Array.unsafe_set z2 k v2
    end
    else if code = 2 (* Not *) then begin
      let a = Array.unsafe_get aa i in
      Array.unsafe_set w0 o (Array.unsafe_get w0 a lxor mask);
      Array.unsafe_set w1 o (Array.unsafe_get w1 a);
      Array.unsafe_set w2 o (Array.unsafe_get w2 a)
    end
    else begin
      (* Const: only party 0 carries public constants *)
      Array.unsafe_set w0 o (if Array.unsafe_get aa i = 1 then mask else 0);
      Array.unsafe_set w1 o 0;
      Array.unsafe_set w2 o 0
    end
  done

(* --- two-party packed re-evaluation (verifier side) ---

   Lane A simulates absolute party [pa] = e in [s.w.(0)] with tape
   [s.tw.(0)]; lane B simulates party [pa+1 mod 3] in [s.w.(1)] with tape
   [s.tw.(1)], its AND-gate outputs supplied in [s.tw.(2)].  Party A's
   recomputed AND outputs land in [s.zw.(0)]. *)

let eval2 (p : Plan.t) (s : scratch) ~(mask : int) ~(pa : int) : unit =
  let pb = (pa + 1) mod 3 in
  let ni = p.Plan.n_inputs in
  let wa = s.w.(0) and wb = s.w.(1) in
  Array.blit s.inw.(0) 0 wa 0 ni;
  Array.blit s.inw.(1) 0 wb 0 ni;
  let za = s.zw.(0) in
  let ta = s.tw.(0) and tb = s.tw.(1) and zb = s.tw.(2) in
  let not_a = if pa = 0 then mask else 0 and not_b = if pb = 0 then mask else 0 in
  let op = p.Plan.op and aa = p.Plan.arg_a and bb = p.Plan.arg_b and kk = p.Plan.and_k in
  for i = 0 to p.Plan.n_gates - 1 do
    let o = ni + i in
    let code = Char.code (Bytes.unsafe_get op i) in
    if code = 0 (* Xor *) then begin
      let a = Array.unsafe_get aa i and b = Array.unsafe_get bb i in
      Array.unsafe_set wa o (Array.unsafe_get wa a lxor Array.unsafe_get wa b);
      Array.unsafe_set wb o (Array.unsafe_get wb a lxor Array.unsafe_get wb b)
    end
    else if code = 1 (* And *) then begin
      let a = Array.unsafe_get aa i and b = Array.unsafe_get bb i in
      let k = Array.unsafe_get kk i in
      let xa = Array.unsafe_get wa a and ya = Array.unsafe_get wa b in
      let v =
        xa land ya
        lxor (Array.unsafe_get wb a land ya)
        lxor (xa land Array.unsafe_get wb b)
        lxor Array.unsafe_get ta k lxor Array.unsafe_get tb k
      in
      Array.unsafe_set wa o v;
      Array.unsafe_set za k v;
      Array.unsafe_set wb o (Array.unsafe_get zb k)
    end
    else if code = 2 (* Not *) then begin
      let a = Array.unsafe_get aa i in
      Array.unsafe_set wa o (Array.unsafe_get wa a lxor not_a);
      Array.unsafe_set wb o (Array.unsafe_get wb a lxor not_b)
    end
    else begin
      let v = Array.unsafe_get aa i in
      Array.unsafe_set wa o (if v = 1 then not_a else 0);
      Array.unsafe_set wb o (if v = 1 then not_b else 0)
    end
  done

(* Gather output wires of wire-word array [w] into per-party out words. *)
let gather_outputs (p : Plan.t) (w : int array) : int array =
  Array.map (fun o -> Array.unsafe_get w o) p.Plan.outputs

(* --- Fiat–Shamir --- *)

let derive_challenges ~(statement_tag : string) ~(public_output : string)
    ~(commits : string array array) ~(out_shares : string array array) (n_reps : int) : int array
    =
  let ctx = Sha256.init () in
  Sha256.feed ctx "zkboo-fs";
  Sha256.feed ctx statement_tag;
  Sha256.feed ctx public_output;
  Array.iter (fun cs -> Array.iter (Sha256.feed ctx) cs) commits;
  Array.iter (fun ys -> Array.iter (Sha256.feed ctx) ys) out_shares;
  let h = Sha256.finish ctx in
  let drbg = Larch_hash.Drbg.create ~entropy:h in
  let out = Array.make n_reps 0 in
  let i = ref 0 in
  while !i < n_reps do
    let block = Larch_hash.Drbg.generate drbg 32 in
    String.iter
      (fun ch ->
        let v = Char.code ch in
        (* 255 = 85*3, so bytes < 255 give uniform trits *)
        if v < 255 && !i < n_reps then begin
          out.(!i) <- v mod 3;
          incr i
        end)
      block
  done;
  out

let bits_to_bytes (bits : bool array) : string =
  Bytesx.string_of_bits (Array.map (fun b -> if b then 1 else 0) bits)

(* --- repetition batching ---

   Cost per batch has a word-parallel part (one plan sweep, independent
   of how many lanes are occupied) and a per-lane part (tapes, transpose,
   commitments).  The batch count is therefore kept minimal —
   ⌈reps/lanes⌉ — then rounded up to a multiple of the domain budget so
   every domain sweeps equally often, and lanes are spread evenly (sizes
   differ by at most one).  137 reps on 2 domains becomes 35/34/34/34
   instead of 62/62/13 with one domain stuck sweeping a 13-lane tail. *)

let balanced_batches ~(reps : int) ~(domains : int) ~(lanes : int) : (int * int) array =
  let min_batches = (reps + lanes - 1) / lanes in
  let n_batches =
    if domains <= 1 then min_batches
    else min reps (domains * ((min_batches + domains - 1) / domains))
  in
  let base = reps / n_batches and extra = reps mod n_batches in
  let batches = Array.make n_batches (0, 0) in
  let start = ref 0 in
  for i = 0 to n_batches - 1 do
    let count = base + if i < extra then 1 else 0 in
    batches.(i) <- (!start, count);
    start := !start + count
  done;
  batches

(* --- prover, in four phases (shares / commit / challenge / respond) --- *)

type rep_artifact = { z : string array; y : string array; c : string array }

type prepared = {
  p_reps : int;
  seeds : string array array; (* n_reps × 3 *)
  shares : string array array; (* n_reps × 3 input-share bytes *)
  p_witness : bool array;
}

type committed = {
  per_rep : rep_artifact array;
  c_commits : string array array;
  c_out_shares : string array array;
}

let shares_phase ~(reps : int) ~(circuit : Circuit.t) ~(witness : bool array)
    ~(rand_bytes : int -> string) : prepared =
  if Array.length witness <> circuit.Circuit.n_inputs then
    invalid_arg "Zkboo.prove: witness size mismatch";
  let n_in = circuit.Circuit.n_inputs in
  let witness_bytes = bits_to_bytes witness in
  let seeds = Array.init reps (fun _ -> Array.init 3 (fun _ -> rand_bytes seed_len)) in
  (* input shares: parties 0,1 from seeds; party 2 explicit *)
  let shares =
    Array.map
      (fun s ->
        let x0 = input_share_of_seed s.(0) n_in and x1 = input_share_of_seed s.(1) n_in in
        let x2 = Bytesx.xor (Bytesx.xor witness_bytes x0) x1 in
        [| x0; x1; x2 |])
      seeds
  in
  { p_reps = reps; seeds; shares; p_witness = witness }

let commit_phase ~(domains : int) ~(lane_width : int) ~(circuit : Circuit.t) (prep : prepared) :
    committed =
  let rt = rt_of circuit in
  let p = rt.plan in
  let n_in = p.Plan.n_inputs and n_and = p.Plan.n_and and n_out = p.Plan.n_outputs in
  let lanes = max 1 (min lanes lane_width) in
  let batches = balanced_batches ~reps:prep.p_reps ~domains ~lanes in
  let run_batch (start, count) : rep_artifact array =
    Trace.with_span "zkboo.prove.batch" @@ fun () ->
    Trace.add_int "reps" count;
    with_scratch rt @@ fun s ->
    let mask = if count >= 62 then max_int else (1 lsl count) - 1 in
    (* input shares: short strings, packed lane-at-a-time *)
    for j = 0 to 2 do
      Array.fill s.inw.(j) 0 n_in 0
    done;
    for l = 0 to count - 1 do
      let rep = start + l in
      for j = 0 to 2 do
        pack_into s.inw.(j) ~lane:l prep.shares.(rep).(j) n_in
      done
    done;
    (* random tapes: PRG-filled into flat staging, transposed blockwise *)
    for j = 0 to 2 do
      for l = 0 to count - 1 do
        let prg = Larch_cipher.Prg.create (prep.seeds.(start + l).(j) ^ "zkboo-tape") in
        Larch_cipher.Prg.fill prg s.tape_flat ~pos:(l * rt.tape_len) ~len:rt.tape_len
      done;
      pack_flat s.tw.(j) s.tape_flat ~stride:rt.tape_len ~count ~n_bits:n_and
    done;
    eval3 p s ~mask;
    let zs = Array.init 3 (fun j -> unpack_all s.zw.(j) ~count ~n_bits:n_and) in
    let ys =
      Array.init 3 (fun j -> unpack_all (gather_outputs p s.w.(j)) ~count ~n_bits:n_out)
    in
    Array.init count (fun l ->
        let rep = start + l in
        let z = Array.init 3 (fun j -> zs.(j).(l)) in
        let y = Array.init 3 (fun j -> ys.(j).(l)) in
        let c =
          Array.init 3 (fun j ->
              commit_with s.ctx ~seed:prep.seeds.(rep).(j)
                ~x_explicit:(if j = 2 then Some prep.shares.(rep).(2) else None)
                ~z:z.(j))
        in
        { z; y; c })
  in
  let artifacts = Larch_util.Parallel.map ~domains run_batch batches in
  let per_rep = Array.concat (Array.to_list artifacts) in
  {
    per_rep;
    c_commits = Array.map (fun a -> a.c) per_rep;
    c_out_shares = Array.map (fun a -> a.y) per_rep;
  }

let challenge_phase ~(circuit : Circuit.t) ~(statement_tag : string) (prep : prepared)
    (comm : committed) : int array =
  let rt = rt_of circuit in
  (* sanity: shares of the output must XOR to the circuit's real output *)
  let public_output =
    bits_to_bytes (with_scratch rt (fun s -> Plan.eval_into rt.plan ~scratch:s.w.(0) prep.p_witness))
  in
  derive_challenges ~statement_tag ~public_output ~commits:comm.c_commits
    ~out_shares:comm.c_out_shares prep.p_reps

let respond_phase (prep : prepared) (comm : committed) (challenges : int array) : proof =
  let responses =
    Array.init prep.p_reps (fun i ->
        let e = challenges.(i) in
        let e1 = (e + 1) mod 3 in
        {
          seed_e = prep.seeds.(i).(e);
          seed_e1 = prep.seeds.(i).(e1);
          x2 = (if e = 2 || e1 = 2 then Some prep.shares.(i).(2) else None);
          z_e1 = comm.per_rep.(i).z.(e1);
        })
  in
  {
    n_reps = prep.p_reps;
    commits = comm.c_commits;
    out_shares = comm.c_out_shares;
    responses;
  }

(* [lane_width] controls how many repetitions share each packed word —
   the default uses all 62 usable bits of a native int; [~lane_width:1]
   degenerates to the unpacked evaluation (the ablation baseline for the
   paper's SIMD optimization). *)
let prove ?(reps = default_reps) ?(domains = 1) ?(lane_width = lanes) ~(circuit : Circuit.t)
    ~(witness : bool array) ~(statement_tag : string) ~(rand_bytes : int -> string) () : proof =
  Trace.with_span "zkboo.prove" @@ fun () ->
  Trace.add_int "reps" reps;
  Trace.add_int "domains" domains;
  Trace.add_int "n_and" circuit.Circuit.n_and;
  (* phase 1/4: per-repetition seeds and input shares *)
  let prep =
    Trace.with_span "zkboo.prove.shares" @@ fun () ->
    shares_phase ~reps ~circuit ~witness ~rand_bytes
  in
  (* phase 2/4: evaluate + commit every repetition (the parallel part) *)
  let comm =
    Trace.with_span "zkboo.prove.commit" @@ fun () ->
    commit_phase ~domains ~lane_width ~circuit prep
  in
  (* phase 3/4: Fiat–Shamir challenge derivation *)
  let challenges =
    Trace.with_span "zkboo.prove.challenge" @@ fun () ->
    challenge_phase ~circuit ~statement_tag prep comm
  in
  (* phase 4/4: assemble the opened views *)
  Trace.with_span "zkboo.prove.respond" @@ fun () -> respond_phase prep comm challenges

(* --- verifier --- *)

let verify ?(domains = 1) ~(circuit : Circuit.t) ~(public_output : bool array)
    ~(statement_tag : string) (proof : proof) : bool =
  Trace.with_span "zkboo.verify" @@ fun () ->
  Trace.add_int "reps" proof.n_reps;
  Trace.add_int "domains" domains;
  let rt = rt_of circuit in
  let p = rt.plan in
  let n_in = p.Plan.n_inputs and n_and = p.Plan.n_and and n_out = p.Plan.n_outputs in
  let out_bytes = bits_to_bytes public_output in
  if Array.length public_output <> n_out then false
  else if
    Array.length proof.commits <> proof.n_reps
    || Array.length proof.out_shares <> proof.n_reps
    || Array.length proof.responses <> proof.n_reps
  then false
  else begin
    let challenges =
      derive_challenges ~statement_tag ~public_output:out_bytes ~commits:proof.commits
        ~out_shares:proof.out_shares proof.n_reps
    in
    (* output shares must XOR to the public output in every repetition *)
    let xor_ok =
      Array.for_all
        (fun ys ->
          Array.length ys = 3
          && Bytesx.ct_equal (Bytesx.xor (Bytesx.xor ys.(0) ys.(1)) ys.(2)) out_bytes)
        proof.out_shares
    in
    if not xor_ok then false
    else begin
      (* group repetitions by challenge so each group packs into words *)
      let groups = [| ref []; ref []; ref [] |] in
      Array.iteri (fun i e -> groups.(e) := i :: !(groups.(e))) challenges;
      let jobs =
        Array.to_list groups
        |> List.concat_map (fun l ->
               let reps = Array.of_list (List.rev !l) in
               (* split into lane-sized chunks *)
               let rec chunks i acc =
                 if i >= Array.length reps then List.rev acc
                 else begin
                   let n = min lanes (Array.length reps - i) in
                   chunks (i + n) (Array.sub reps i n :: acc)
                 end
               in
               chunks 0 [])
        |> Array.of_list
      in
      let check_chunk (rep_ids : int array) : bool =
        Trace.with_span "zkboo.verify.chunk" @@ fun () ->
        let count = Array.length rep_ids in
        Trace.add_int "reps" count;
        if count = 0 then true
        else begin
          with_scratch rt @@ fun s ->
          let e = challenges.(rep_ids.(0)) in
          let e1 = (e + 1) mod 3 in
          let mask = if count >= 62 then max_int else (1 lsl count) - 1 in
          let share_a = Array.make count "" and share_b = Array.make count "" in
          Array.fill s.inw.(0) 0 n_in 0;
          Array.fill s.inw.(1) 0 n_in 0;
          let ok = ref true in
          for l = 0 to count - 1 do
            let i = rep_ids.(l) in
            let r = proof.responses.(i) in
            let share_of party seed =
              if party = 2 then begin
                match r.x2 with
                | Some x when String.length x = bytes_for_bits n_in -> x
                | _ ->
                    ok := false;
                    String.make (bytes_for_bits n_in) '\000'
              end
              else input_share_of_seed seed n_in
            in
            let sa = share_of e r.seed_e and sb = share_of e1 r.seed_e1 in
            share_a.(l) <- sa;
            share_b.(l) <- sb;
            if String.length r.z_e1 <> bytes_for_bits n_and then ok := false
            else begin
              pack_into s.inw.(0) ~lane:l sa n_in;
              pack_into s.inw.(1) ~lane:l sb n_in;
              (* opened z bits: staged flat, transposed with the tapes *)
              Bytes.blit_string r.z_e1 0 s.tape_flat (l * rt.tape_len) rt.tape_len
            end
          done;
          !ok
          && begin
               pack_flat s.tw.(2) s.tape_flat ~stride:rt.tape_len ~count ~n_bits:n_and;
               for l = 0 to count - 1 do
                 let r = proof.responses.(rep_ids.(l)) in
                 let prg = Larch_cipher.Prg.create (r.seed_e ^ "zkboo-tape") in
                 Larch_cipher.Prg.fill prg s.tape_flat ~pos:(l * rt.tape_len) ~len:rt.tape_len
               done;
               pack_flat s.tw.(0) s.tape_flat ~stride:rt.tape_len ~count ~n_bits:n_and;
               for l = 0 to count - 1 do
                 let r = proof.responses.(rep_ids.(l)) in
                 let prg = Larch_cipher.Prg.create (r.seed_e1 ^ "zkboo-tape") in
                 Larch_cipher.Prg.fill prg s.tape_flat ~pos:(l * rt.tape_len) ~len:rt.tape_len
               done;
               pack_flat s.tw.(1) s.tape_flat ~stride:rt.tape_len ~count ~n_bits:n_and;
               eval2 p s ~mask ~pa:e;
               let zas = unpack_all s.zw.(0) ~count ~n_bits:n_and in
               let yas = unpack_all (gather_outputs p s.w.(0)) ~count ~n_bits:n_out in
               let ybs = unpack_all (gather_outputs p s.w.(1)) ~count ~n_bits:n_out in
               Array.for_all
                 (fun l ->
                   let i = rep_ids.(l) in
                   let r = proof.responses.(i) in
                   let ca =
                     commit_with s.ctx ~seed:r.seed_e
                       ~x_explicit:(if e = 2 then Some share_a.(l) else None)
                       ~z:zas.(l)
                   in
                   let cb =
                     commit_with s.ctx ~seed:r.seed_e1
                       ~x_explicit:(if e1 = 2 then Some share_b.(l) else None)
                       ~z:r.z_e1
                   in
                   Bytesx.ct_equal ca proof.commits.(i).(e)
                   && Bytesx.ct_equal cb proof.commits.(i).(e1)
                   && Bytesx.ct_equal yas.(l) proof.out_shares.(i).(e)
                   && Bytesx.ct_equal ybs.(l) proof.out_shares.(i).(e1))
                 (Array.init count (fun l -> l))
             end
        end
      in
      let results = Larch_util.Parallel.map ~domains check_chunk jobs in
      Array.for_all (fun b -> b) results
    end
  end

(* --- serialization --- *)

let put_str buf s =
  Buffer.add_string buf (Bytesx.be32 (String.length s));
  Buffer.add_string buf s

let to_bytes (p : proof) : string =
  let buf = Buffer.create (1 lsl 20) in
  Buffer.add_string buf (Bytesx.be32 p.n_reps);
  Array.iteri
    (fun i cs ->
      Array.iter (Buffer.add_string buf) cs;
      Array.iter (put_str buf) p.out_shares.(i);
      let r = p.responses.(i) in
      Buffer.add_string buf r.seed_e;
      Buffer.add_string buf r.seed_e1;
      (match r.x2 with
      | None -> Buffer.add_char buf '\000'
      | Some x ->
          Buffer.add_char buf '\001';
          put_str buf x);
      put_str buf r.z_e1)
    p.commits;
  Buffer.contents buf

exception Malformed

let of_bytes (s : string) : proof option =
  let pos = ref 0 in
  let take n =
    if !pos + n > String.length s then raise Malformed;
    let r = String.sub s !pos n in
    pos := !pos + n;
    r
  in
  let take_u32 () =
    let b = take 4 in
    (Char.code b.[0] lsl 24) lor (Char.code b.[1] lsl 16) lor (Char.code b.[2] lsl 8)
    lor Char.code b.[3]
  in
  let take_str () =
    let n = take_u32 () in
    if n > String.length s then raise Malformed;
    take n
  in
  try
    let n_reps = take_u32 () in
    if n_reps <= 0 || n_reps > 4096 then raise Malformed;
    let commits = Array.make n_reps [||] in
    let out_shares = Array.make n_reps [||] in
    let responses =
      Array.init n_reps (fun i ->
          commits.(i) <- Array.init 3 (fun _ -> take 32);
          out_shares.(i) <- Array.init 3 (fun _ -> take_str ());
          let seed_e = take seed_len in
          let seed_e1 = take seed_len in
          let x2 = match (take 1).[0] with '\000' -> None | _ -> Some (take_str ()) in
          let z_e1 = take_str () in
          { seed_e; seed_e1; x2; z_e1 })
    in
    if !pos <> String.length s then raise Malformed;
    Some { n_reps; commits; out_shares; responses }
  with Malformed -> None

let size_bytes (p : proof) : int = String.length (to_bytes p)

(* --- per-phase entry points for the micro benchmarks --- *)

module Phases = struct
  type nonrec prepared = prepared
  type nonrec committed = committed

  let shares = shares_phase

  let commit ?(domains = 1) ?(lane_width = lanes) ~circuit prep =
    commit_phase ~domains ~lane_width ~circuit prep

  let challenge = challenge_phase
  let respond = respond_phase
end
