(** ZKBoo / ZKB++ non-interactive zero-knowledge proofs for Boolean
    circuits (MPC-in-the-head), made non-interactive with Fiat–Shamir in
    the random-oracle model.

    Larch's FIDO2 protocol uses this to prove, before the log signs, that
    the encrypted log record is a well-formed encryption of the
    relying-party identity behind the signing digest (§3.2).

    Soundness error is (2/3)^reps; the default {!default_reps} = 137 gives
    < 2⁻⁸⁰, the paper's setting.  Repetitions are evaluated bit-packed, 62
    per native int (the paper's SIMD optimization), and batches can run on
    multiple domains — the knob behind Figure 3 (left). *)

module Circuit = Larch_circuit.Circuit

val default_reps : int
val lanes : int
val seed_len : int

(** Opened material for one repetition with challenge e: the two revealed
    seeds, party 2's explicit input share when opened, and party (e+1)'s
    AND-gate output bits. *)
type response = {
  seed_e : string;
  seed_e1 : string;
  x2 : string option;
  z_e1 : string;
}

type proof = {
  n_reps : int;
  commits : string array array; (** per repetition: 3 view commitments *)
  out_shares : string array array; (** per repetition: 3 output-bit shares *)
  responses : response array;
}

val prove :
  ?reps:int ->
  ?domains:int ->
  ?lane_width:int ->
  circuit:Circuit.t ->
  witness:bool array ->
  statement_tag:string ->
  rand_bytes:(int -> string) ->
  unit ->
  proof
(** Prove knowledge of [witness] such that the circuit evaluates to the
    public output (which the verifier supplies).  [statement_tag] binds the
    surrounding statement into the Fiat–Shamir challenge; [lane_width]
    exists for the packing ablation ([1] = unpacked). *)

val verify :
  ?domains:int ->
  circuit:Circuit.t ->
  public_output:bool array ->
  statement_tag:string ->
  proof ->
  bool

val to_bytes : proof -> string
val of_bytes : string -> proof option
val size_bytes : proof -> int

(**/**)

val bytes_for_bits : int -> int
val input_share_of_seed : string -> int -> string
val tape_of_seed : string -> int -> string

(** The prover split into its four phases, in proving order — exposed so
    the micro benchmarks can time each phase in isolation.  [prove] is
    exactly shares → commit → challenge → respond. *)
module Phases : sig
  type prepared
  type committed

  val shares :
    reps:int ->
    circuit:Circuit.t ->
    witness:bool array ->
    rand_bytes:(int -> string) ->
    prepared

  val commit : ?domains:int -> ?lane_width:int -> circuit:Circuit.t -> prepared -> committed
  val challenge : circuit:Circuit.t -> statement_tag:string -> prepared -> committed -> int array
  val respond : prepared -> committed -> int array -> proof
end
