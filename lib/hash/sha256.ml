(* SHA-256 (FIPS 180-4).

   Implemented over native ints with explicit 32-bit masking; OCaml's 63-bit
   ints hold every intermediate sum.  This module is the root of trust for
   commitments, digests, HMAC, the DRBG, and the in-circuit statement (the
   gate-level SHA-256 in [Larch_circuit.Sha256_circuit] is tested against
   it). *)

let mask32 = 0xffffffff
let digest_size = 32
let block_size = 64

let k =
  [|
    0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1;
    0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
    0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174; 0xe49b69c1; 0xefbe4786;
    0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
    0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
    0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
    0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85; 0xa2bfe8a1; 0xa81a664b;
    0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
    0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a;
    0x5b9cca4f; 0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
    0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2;
  |]

let initial_state = [| 0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f; 0x9b05688c; 0x1f83d9ab; 0x5be0cd19 |]

let rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask32

type ctx = {
  mutable h : int array;
  buf : Bytes.t; (* partial block *)
  mutable buf_len : int;
  mutable total : int; (* total bytes fed *)
  w : int array; (* message-schedule scratch, reused across blocks *)
}

let init () =
  {
    h = Array.copy initial_state;
    buf = Bytes.create block_size;
    buf_len = 0;
    total = 0;
    w = Array.make 64 0;
  }

let reset (ctx : ctx) : unit =
  Array.blit initial_state 0 ctx.h 0 8;
  ctx.buf_len <- 0;
  ctx.total <- 0

(* One compression round over [w] as schedule scratch.  Indices are
   structurally in range (0..63 / fixed offsets), so array and string
   accesses are unchecked — this loop runs once per 64 bytes of every
   commitment in a ZKBoo proof (~24k blocks per FIDO2 prove). *)
let compress_with (w : int array) (h : int array) (block : string) (off : int) : unit =
  for t = 0 to 15 do
    let i = off + (4 * t) in
    Array.unsafe_set w t
      ((Char.code (String.unsafe_get block i) lsl 24)
      lor (Char.code (String.unsafe_get block (i + 1)) lsl 16)
      lor (Char.code (String.unsafe_get block (i + 2)) lsl 8)
      lor Char.code (String.unsafe_get block (i + 3)))
  done;
  for t = 16 to 63 do
    let w15 = Array.unsafe_get w (t - 15) and w2 = Array.unsafe_get w (t - 2) in
    let s0 = rotr w15 7 lxor rotr w15 18 lxor (w15 lsr 3) in
    let s1 = rotr w2 17 lxor rotr w2 19 lxor (w2 lsr 10) in
    Array.unsafe_set w t ((Array.unsafe_get w (t - 16) + s0 + Array.unsafe_get w (t - 7) + s1) land mask32)
  done;
  let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
  let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
  for t = 0 to 63 do
    let s1 = rotr !e 6 lxor rotr !e 11 lxor rotr !e 25 in
    let ch = (!e land !f) lxor (lnot !e land !g) land mask32 in
    let t1 = (!hh + s1 + ch + Array.unsafe_get k t + Array.unsafe_get w t) land mask32 in
    let s0 = rotr !a 2 lxor rotr !a 13 lxor rotr !a 22 in
    let maj = (!a land !b) lxor (!a land !c) lxor (!b land !c) in
    let t2 = (s0 + maj) land mask32 in
    hh := !g;
    g := !f;
    f := !e;
    e := (!d + t1) land mask32;
    d := !c;
    c := !b;
    b := !a;
    a := (t1 + t2) land mask32
  done;
  h.(0) <- (h.(0) + !a) land mask32;
  h.(1) <- (h.(1) + !b) land mask32;
  h.(2) <- (h.(2) + !c) land mask32;
  h.(3) <- (h.(3) + !d) land mask32;
  h.(4) <- (h.(4) + !e) land mask32;
  h.(5) <- (h.(5) + !f) land mask32;
  h.(6) <- (h.(6) + !g) land mask32;
  h.(7) <- (h.(7) + !hh) land mask32

let compress (h : int array) (block : string) (off : int) : unit =
  compress_with (Array.make 64 0) h block off

let feed_sub (ctx : ctx) (s : string) ~(pos : int) ~(len : int) : unit =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Sha256.feed_sub: out of bounds";
  ctx.total <- ctx.total + len;
  let p = ref pos and fin = pos + len in
  (* Fill a partial block first. *)
  if ctx.buf_len > 0 then begin
    let take = min (block_size - ctx.buf_len) len in
    Bytes.blit_string s !p ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    p := !p + take;
    if ctx.buf_len = block_size then begin
      compress_with ctx.w ctx.h (Bytes.unsafe_to_string ctx.buf) 0;
      ctx.buf_len <- 0
    end
  end;
  while fin - !p >= block_size do
    compress_with ctx.w ctx.h s !p;
    p := !p + block_size
  done;
  if !p < fin then begin
    Bytes.blit_string s !p ctx.buf 0 (fin - !p);
    ctx.buf_len <- fin - !p
  end

let feed (ctx : ctx) (s : string) : unit = feed_sub ctx s ~pos:0 ~len:(String.length s)

(* Safe despite [unsafe_to_string]: the bytes are consumed (compressed or
   copied into [ctx.buf]) before the call returns. *)
let feed_bytes (ctx : ctx) (b : Bytes.t) ~(pos : int) ~(len : int) : unit =
  feed_sub ctx (Bytes.unsafe_to_string b) ~pos ~len

let finish (ctx : ctx) : string =
  let total_bits = Int64.of_int (8 * ctx.total) in
  let pad_len =
    let r = (ctx.total + 1 + 8) mod block_size in
    if r = 0 then 1 + 8 else 1 + 8 + (block_size - r)
  in
  let pad = Bytes.make pad_len '\000' in
  Bytes.set pad 0 '\x80';
  Bytes.set_int64_be pad (pad_len - 8) total_bits;
  feed ctx (Bytes.unsafe_to_string pad);
  assert (ctx.buf_len = 0);
  let out = Bytes.create digest_size in
  for i = 0 to 7 do
    Bytes.set_uint8 out (4 * i) ((ctx.h.(i) lsr 24) land 0xff);
    Bytes.set_uint8 out ((4 * i) + 1) ((ctx.h.(i) lsr 16) land 0xff);
    Bytes.set_uint8 out ((4 * i) + 2) ((ctx.h.(i) lsr 8) land 0xff);
    Bytes.set_uint8 out ((4 * i) + 3) (ctx.h.(i) land 0xff)
  done;
  Bytes.unsafe_to_string out

let digest (s : string) : string =
  let ctx = init () in
  feed ctx s;
  finish ctx

let digest_list (parts : string list) : string =
  let ctx = init () in
  List.iter (feed ctx) parts;
  finish ctx
