(** SHA-256 (FIPS 180-4) — the root of trust for commitments, signing
    digests, HMAC, the DRBG, and the in-circuit statements (the gate-level
    SHA-256 is tested against this module). *)

val digest_size : int
val block_size : int

val digest : string -> string
val digest_list : string list -> string

(** {1 Streaming} *)

type ctx

val init : unit -> ctx
val feed : ctx -> string -> unit
val finish : ctx -> string

val reset : ctx -> unit
(** Return the context to the freshly-initialized state, keeping its
    scratch buffers — one context can stream many digests (ZKBoo hashes
    411 view commitments per proof through a single context). *)

val feed_sub : ctx -> string -> pos:int -> len:int -> unit
(** Feed a substring without copying it out first. *)

val feed_bytes : ctx -> Bytes.t -> pos:int -> len:int -> unit
(** Feed from a (reusable) byte buffer without copies; the bytes are
    consumed before the call returns, so the buffer may be overwritten
    afterwards. *)

(**/**)

val k : int array
val initial_state : int array
val compress : int array -> string -> int -> unit
