(** Process-wide observability switches.  Tracing (spans + metrics) and
    the log-service event stream are gated separately; both default to
    off, and the disabled hot path is a single atomic load. *)

val tracing_enabled : unit -> bool
val events_enabled : unit -> bool
val set_tracing : bool -> unit
val set_events : bool -> unit
val enable_all : unit -> unit
val disable_all : unit -> unit

val now : unit -> float
(** The observability wall clock: real time by default, or whatever
    {!set_time_source} installed (e.g. the simulated [Larch_util.Clock] in
    deterministic fault-replay harnesses). *)

val set_time_source : (unit -> float) option -> unit
(** [set_time_source (Some f)] makes {!now} read [f]; [None] restores the
    real clock. *)
