(** Metrics registry: named counters, gauges, and log₂-bucketed latency
    histograms with percentile summaries.

    Naming convention: [layer.component.op], lowercase, dot-separated
    (e.g. ["net.fido2.bytes_up"], ["span.zkboo.prove"]).

    All mutating entry points except {!force_add} are no-ops while
    [Runtime.tracing] is disabled, and the disabled path allocates
    nothing. *)

type counter
type gauge
type histogram

type t
(** A registry.  Built-in instrumentation writes to {!default}; tests and
    embedders can create private registries. *)

val create : unit -> t
val default : t

val counter : t -> string -> counter
(** Get or create (registration is idempotent and thread-safe). *)

val gauge : t -> string -> gauge
val histogram : t -> string -> histogram

val add : counter -> int -> unit
val inc : counter -> unit
val counter_value : counter -> int

val force_add : counter -> int -> unit
(** Like {!add} but bypasses the runtime toggle: for explicit cold-path
    snapshot exports (e.g. [Larch_net.Channel.observe]) where the call
    itself is the opt-in. *)

val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : histogram -> float -> unit
(** Record one observation (by convention: milliseconds for latency). *)

val histogram_count : histogram -> int
val histogram_sum : histogram -> float
val histogram_mean : histogram -> float

val percentile : histogram -> float -> float
(** [percentile h 0.99] estimates the q-quantile at the geometric midpoint
    of the winning log₂ bucket, clamped to the observed min/max; the
    resolution is one bucket (a factor of 2). *)

val reset : t -> unit
(** Zero every registered metric (metrics stay registered). *)

val report : t -> string
(** Render counters, gauges, and histogram summary rows (count, mean,
    p50/p95/p99, max) as an aligned text table. *)
