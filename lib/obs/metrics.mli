(** Metrics registry: named counters, gauges, and high-resolution latency
    histograms (HDR-style log-linear buckets, quantiles within ≈1% — see
    {!Histo}).

    Naming convention: [layer.component.op], lowercase, dot-separated
    (e.g. ["net.fido2.bytes_up"], ["span.zkboo.prove"]).

    All mutating entry points except the [force_*] family are no-ops while
    [Runtime.tracing] is disabled, and the disabled path allocates
    nothing. *)

type counter
type gauge
type histogram

type t
(** A registry.  Built-in instrumentation writes to {!default}; tests and
    embedders can create private registries. *)

val create : unit -> t
val default : t

val counter : t -> string -> counter
(** Get or create (registration is idempotent and thread-safe). *)

val gauge : t -> string -> gauge
val histogram : t -> string -> histogram

val add : counter -> int -> unit
val inc : counter -> unit
val counter_value : counter -> int

val force_add : counter -> int -> unit
(** Like {!add} but bypasses the runtime toggle: for explicit cold-path
    snapshot exports (e.g. [Larch_net.Channel.observe]) where the call
    itself is the opt-in. *)

val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val force_set_gauge : gauge -> float -> unit
(** {!set_gauge} minus the runtime toggle (deterministic harnesses). *)

val observe : histogram -> float -> unit
(** Record one observation (by convention: milliseconds for latency). *)

val force_observe : histogram -> float -> unit
(** {!observe} minus the runtime toggle (deterministic harnesses). *)

val histogram_count : histogram -> int
val histogram_sum : histogram -> float
val histogram_mean : histogram -> float

val histogram_min : histogram -> float
(** [infinity] while empty. *)

val histogram_max : histogram -> float
(** [neg_infinity] while empty. *)

val percentile : histogram -> float -> float
(** [percentile h 0.99] estimates the q-quantile at the midpoint of the
    winning log-linear sub-bucket, clamped to the observed min/max; the
    resolution is one sub-bucket (≈1%). *)

val reset : t -> unit
(** Zero every registered metric (metrics stay registered). *)

(** {2 Snapshots} *)

type hist_snapshot = {
  hs_count : int;
  hs_sum : float;
  hs_min : float;
  hs_max : float;
  hs_mean : float;
  hs_p50 : float;
  hs_p90 : float;
  hs_p99 : float;
  hs_p999 : float;
  hs_buckets : (float * int) list;
      (** (bucket upper bound, count) for non-empty buckets, increasing. *)
}

type snapshot = {
  s_counters : (string * int) list;
  s_gauges : (string * float) list;
  s_histograms : (string * hist_snapshot) list;
}
(** All three lists sorted by metric name: a deterministic value the
    flight recorder and the exporters consume. *)

val snapshot : t -> snapshot

val merge : into:t -> t -> unit
(** Fold [src] into [into]: counters and gauges add, histograms
    bucket-merge losslessly (see {!Histo.merge_into}).  Metrics missing
    from [into] are registered.  Bypasses the runtime toggle — merging is
    an explicit aggregation step, the primitive for folding per-domain
    registries of a sharded log into one capacity view. *)

val report : t -> string
(** Render counters, gauges, and histogram summary rows (count, mean,
    p50/p95/p99, max) as an aligned text table. *)
