(* Structured log-service event stream.

   Every operationally interesting protocol step emits one event: a
   deployment can see exactly which step failed and why — without seeing
   *what* was authenticated.

   PRIVACY RULE (paper §2.3, log privacy): an event must never carry a
   relying-party identifier — no RP name, no RP id hash, no registration
   identifier, no ciphertext.  Allowed fields are the client id (which the
   log already knows), the authentication method, severities, counts and
   protocol-step error strings.  `test/test_obs.ml` enforces this over full
   FIDO2/TOTP/password flows.

   Events are buffered in a bounded in-memory ring (newest kept) and can
   additionally be pushed to subscribers (e.g. a real log shipper).
   Disabled (the default), [emit] is one atomic load. *)

type severity = Debug | Info | Warn | Error

type kind =
  | Enroll
  | Register
  | Auth_begin
  | Auth_commit
  | Auth_finish
  | Policy_denied
  | Objection
  | Revocation
  | Audit
  | Backup
  | Recovery
  | Protocol_error
  | Transport_retry
  | Transport_timeout
  | Transport_fault
  | Failover

type event = {
  seq : int;
  time : float; (* Unix.gettimeofday at emission *)
  severity : severity;
  kind : kind;
  method_ : string option; (* "fido2" | "totp" | "password" *)
  client : string option;
  detail : string;
}

let severity_to_string = function
  | Debug -> "DEBUG"
  | Info -> "INFO"
  | Warn -> "WARN"
  | Error -> "ERROR"

let kind_to_string = function
  | Enroll -> "enroll"
  | Register -> "register"
  | Auth_begin -> "auth_begin"
  | Auth_commit -> "auth_commit"
  | Auth_finish -> "auth_finish"
  | Policy_denied -> "policy_denied"
  | Objection -> "objection"
  | Revocation -> "revocation"
  | Audit -> "audit"
  | Backup -> "backup"
  | Recovery -> "recovery"
  | Protocol_error -> "protocol_error"
  | Transport_retry -> "transport.retry"
  | Transport_timeout -> "transport.timeout"
  | Transport_fault -> "transport.fault"
  | Failover -> "failover"

let capacity = 4096
let mu = Mutex.create ()
let ring : event Queue.t = Queue.create ()
let seq = ref 0
let subscribers : (event -> unit) list ref = ref []

let subscribe (f : event -> unit) =
  Mutex.lock mu;
  subscribers := f :: !subscribers;
  Mutex.unlock mu

(* [clear] also rewinds the sequence counter so a cleared stream replays
   identically — the fault-injection determinism tests compare rendered
   event streams across two seeded runs. *)
let clear () =
  Mutex.lock mu;
  Queue.clear ring;
  subscribers := [];
  seq := 0;
  Mutex.unlock mu

let emit ?(severity = Info) ?method_ ?client (kind : kind) (detail : string) : unit =
  if Runtime.events_enabled () then begin
    Mutex.lock mu;
    incr seq;
    let e = { seq = !seq; time = Runtime.now (); severity; kind; method_; client; detail } in
    Queue.push e ring;
    if Queue.length ring > capacity then ignore (Queue.pop ring);
    let subs = !subscribers in
    Mutex.unlock mu;
    List.iter (fun f -> f e) subs
  end

(* Oldest first. *)
let recent () : event list =
  Mutex.lock mu;
  let l = Queue.fold (fun acc e -> e :: acc) [] ring in
  Mutex.unlock mu;
  List.rev l

let to_string (e : event) : string =
  Printf.sprintf "#%-4d %-5s %-14s%s%s %s" e.seq (severity_to_string e.severity)
    (kind_to_string e.kind)
    (match e.method_ with Some m -> Printf.sprintf " method=%s" m | None -> "")
    (match e.client with Some c -> Printf.sprintf " client=%s" c | None -> "")
    e.detail
