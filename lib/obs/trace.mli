(** Hierarchical tracing spans on the monotonic clock.

    Each domain keeps its own open-span stack, so spans opened inside
    [Larch_util.Parallel] workers nest correctly; the parallel runner
    stitches worker spans under the spawning domain's current span via
    {!with_parent}.  Every finished span also feeds the latency histogram
    ["span.<name>"] in [Metrics.default].

    When tracing is disabled ({!Runtime.set_tracing}[ false], the
    default), {!with_span} is [f ()] after one atomic load: no clock read,
    no allocation. *)

type attr = Int of int | Float of float | Str of string

type span = {
  id : int;
  parent : int;  (** -1 = root *)
  name : string;
  domain : int;  (** trace row: the OCaml domain id, or the {!with_tid} lane *)
  start_ns : int64;  (** monotonic, relative to the trace epoch *)
  mutable dur_ns : int64;
  mutable attrs : (string * attr) list;  (** newest first *)
}

val now_ns : unit -> int64
(** The monotonic clock backing all spans (CLOCK_MONOTONIC, nanoseconds). *)

val reset : unit -> unit
(** Drop all finished spans and restart the trace epoch. *)

val with_span : string -> (unit -> 'a) -> 'a
(** Run the thunk under a named span.  Exceptions propagate; the span is
    recorded either way. *)

val add_int : string -> int -> unit
(** Attach an attribute to the innermost open span on this domain (no-op
    when tracing is disabled or no span is open). *)

val add_str : string -> string -> unit
val add_float : string -> float -> unit

val current : unit -> int option
(** Id of the innermost open span on this domain. *)

val with_parent : int option -> (unit -> 'a) -> 'a
(** Adopt [pid] as the parent for spans opened on this domain while no
    local span is open — used to stitch worker-domain spans under the
    spawning domain's span. *)

val with_tid : int -> (unit -> 'a) -> 'a
(** Pin spans opened in the thunk (on this domain) to trace row [tid].
    OCaml domain ids are recycled slot indices, so successive parallel
    sections would otherwise interleave distinct workers into one
    chrome://tracing row; [Larch_util.Parallel] pins worker [w] to lane
    [1000 + w]. *)

val current_tid : unit -> int
(** The row spans opened right now would land on. *)

val timed : string -> (unit -> 'a) -> 'a * float
(** Measure the thunk on the monotonic clock (seconds), recording a span
    when tracing is enabled.  The shared timing substrate for CLI demos
    and the bench. *)

val spans : unit -> span list
(** Finished spans in start order. *)

val span_count : unit -> int
val ms_of_ns : int64 -> float

val ancestors : span list -> span -> span list
(** [ancestors all sp]: [sp]'s ancestry, outermost first, resolved within
    [all]. *)

val report : unit -> string
(** Indented call-tree report; same-name sibling groups aggregate into one
    ["×n"] line. *)

val to_chrome_json : unit -> string
(** Chrome trace_event JSON (complete "X" events; ts/dur in µs, tid = the
    span's row, each labelled by a "thread_name" metadata event), loadable
    in chrome://tracing or Perfetto. *)

val write_chrome_json : string -> unit
