(** Registry exporters.

    Both formats render from a {!Metrics.snapshot} and are deterministic:
    names sorted, buckets in increasing bound order, one shared float
    formatter.  Neither carries label values or free-form strings, so the
    paper §2.3 privacy invariant (no relying-party identifiers) reduces to
    "metric names are static" — enforced by the privacy test grepping the
    rendered output. *)

val prometheus : Metrics.t -> string
(** Prometheus text exposition: [larch_]-prefixed sanitized names;
    counters, gauges, and histograms with cumulative [le] buckets plus
    [_sum]/[_count]. *)

val json : Metrics.t -> string
(** Canonical JSON: [{"counters":{...},"gauges":{...},"histograms":{...}}]
    with keys in sorted order. *)

val json_of_snapshot : Metrics.snapshot -> string
(** {!json} over an already-taken snapshot (the flight recorder renders
    ring entries through this). *)

val prom_name : string -> string
(** Exposed for tests: the Prometheus name sanitizer. *)

val fstr : float -> string
(** The shared deterministic float formatter (used by the flight recorder
    and the capacity report so every number renders identically). *)
