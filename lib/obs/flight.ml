(* Flight recorder: last-N-seconds telemetry that survives to the crash
   report.

   A fixed-size ring of timestamped registry snapshots (plus the tail of
   the event stream at each snapshot), filled by periodic [record] calls
   from whatever harness is driving the world.  When something dies —
   [Disk.crash], a transport crash-restart — the owner calls [incident],
   which renders the ring plus the current registry state into one text
   dump, remembers it, and hands it to the optional sink.  Every
   fault-injection failure then comes with the telemetry that led up to
   it, instead of a bare assertion message.

   Timestamps come from [Runtime.now], so harnesses that install the
   simulated clock get byte-identical dumps across seeded runs.  Events
   are rendered through [Events.to_string], which never prints the
   wall-clock time and (by the §2.3 privacy rule) never carries a
   relying-party identifier — the privacy test greps dumps end-to-end. *)

type entry = { at : float; snap : Metrics.snapshot; tail : string list }

type t = {
  mu : Mutex.t;
  capacity : int;
  ring : entry option array;
  mutable next : int; (* next insertion slot *)
  mutable filled : int;
  registry : Metrics.t;
  mutable sink : (string -> unit) option;
  mutable last : string option;
  mutable incidents : int;
}

let create ?(capacity = 32) ?(registry = Metrics.default) () : t =
  let capacity = max 1 capacity in
  {
    mu = Mutex.create ();
    capacity;
    ring = Array.make capacity None;
    next = 0;
    filled = 0;
    registry;
    sink = None;
    last = None;
    incidents = 0;
  }

let default : t = create ()

let with_lock t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* Newest [n] buffered events, oldest of them first. *)
let event_tail (n : int) : string list =
  let evs = Events.recent () in
  let drop = List.length evs - n in
  let evs = if drop > 0 then List.filteri (fun i _ -> i >= drop) evs else evs in
  List.map Events.to_string evs

let record (t : t) : unit =
  let e = { at = Runtime.now (); snap = Metrics.snapshot t.registry; tail = event_tail 8 } in
  with_lock t (fun () ->
      t.ring.(t.next) <- Some e;
      t.next <- (t.next + 1) mod t.capacity;
      if t.filled < t.capacity then t.filled <- t.filled + 1)

(* Ring entries oldest-first. *)
let entries (t : t) : entry list =
  let acc = ref [] in
  for k = 1 to t.filled do
    let idx = (t.next - k + (2 * t.capacity)) mod t.capacity in
    match t.ring.(idx) with Some e -> acc := e :: !acc | None -> ()
  done;
  !acc

let set_sink (t : t) (sink : (string -> unit) option) : unit =
  with_lock t (fun () -> t.sink <- sink)

let render_entry (buf : Buffer.t) (i : int) (e : entry) : unit =
  Buffer.add_string buf (Printf.sprintf "--- ring[%d] t=%s ---\n" i (Export.fstr e.at));
  Buffer.add_string buf (Export.json_of_snapshot e.snap);
  Buffer.add_char buf '\n';
  List.iter (fun ev -> Buffer.add_string buf ("  " ^ ev ^ "\n")) e.tail

let incident ?(detail = "") (t : t) (reason : string) : unit =
  let now = Runtime.now () in
  let current = Metrics.snapshot t.registry in
  let recent = event_tail 32 in
  let dump, sink =
    with_lock t (fun () ->
        t.incidents <- t.incidents + 1;
        let buf = Buffer.create 4096 in
        Buffer.add_string buf "=== larch flight recorder ===\n";
        Buffer.add_string buf (Printf.sprintf "incident: %s\n" reason);
        if detail <> "" then Buffer.add_string buf (Printf.sprintf "detail: %s\n" detail);
        Buffer.add_string buf (Printf.sprintf "incident_seq: %d\n" t.incidents);
        Buffer.add_string buf (Printf.sprintf "at: %s\n" (Export.fstr now));
        let es = entries t in
        Buffer.add_string buf (Printf.sprintf "ring_entries: %d\n" (List.length es));
        List.iteri (fun i e -> render_entry buf i e) es;
        Buffer.add_string buf "--- current ---\n";
        Buffer.add_string buf (Export.json_of_snapshot current);
        Buffer.add_char buf '\n';
        if recent <> [] then begin
          Buffer.add_string buf "recent events:\n";
          List.iter (fun ev -> Buffer.add_string buf ("  " ^ ev ^ "\n")) recent
        end;
        Buffer.add_string buf "=== end flight dump ===\n";
        let dump = Buffer.contents buf in
        t.last <- Some dump;
        (dump, t.sink))
  in
  (* Sink runs outside the lock: it may log, write a file, or re-enter. *)
  match sink with Some f -> f dump | None -> ()

let last_dump (t : t) : string option = with_lock t (fun () -> t.last)
let incident_count (t : t) : int = with_lock t (fun () -> t.incidents)

let clear (t : t) : unit =
  with_lock t (fun () ->
      Array.fill t.ring 0 t.capacity None;
      t.next <- 0;
      t.filled <- 0;
      t.last <- None;
      t.incidents <- 0)
