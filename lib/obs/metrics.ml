(* Process-global metrics registry: named counters, gauges, and
   high-resolution latency histograms (see {!Histo}: HDR-style log-linear
   buckets, quantiles within ≈1%).

   Naming convention: [layer.component.op], lowercase, dot-separated
   (e.g. "net.fido2.bytes_up", "log.records.stored", "span.zkboo.prove").

   Counters are lock-free ([Atomic]); gauges and histograms take a
   per-metric mutex, which is fine because they are only touched at span
   granularity, never per-gate/per-byte.  All mutating entry points except
   the [force_*] family are no-ops while [Runtime.tracing] is off, so an
   uninstrumented run pays one atomic load per call site and allocates
   nothing.

   Registries [snapshot] (a deterministic, name-sorted value the flight
   recorder and the exporters consume) and [merge] (cross-registry
   aggregation: counters add, gauges add, histograms bucket-merge — the
   primitive a domain-sharded log needs to fold per-domain registries into
   one capacity view). *)

type counter = { cname : string; cell : int Atomic.t }
type gauge = { gname : string; gmu : Mutex.t; mutable gval : float }
type histogram = { hname : string; hmu : Mutex.t; core : Histo.t }

type t = {
  mu : Mutex.t;
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create () : t =
  {
    mu = Mutex.create ();
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 32;
  }

(* The registry used by all built-in instrumentation. *)
let default : t = create ()

let with_lock mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let get_or_add (type v) mu (tbl : (string, v) Hashtbl.t) (name : string) (mk : unit -> v) : v =
  with_lock mu (fun () ->
      match Hashtbl.find_opt tbl name with
      | Some m -> m
      | None ->
          let m = mk () in
          Hashtbl.replace tbl name m;
          m)

let counter (t : t) (name : string) : counter =
  get_or_add t.mu t.counters name (fun () -> { cname = name; cell = Atomic.make 0 })

let gauge (t : t) (name : string) : gauge =
  get_or_add t.mu t.gauges name (fun () -> { gname = name; gmu = Mutex.create (); gval = 0. })

let histogram (t : t) (name : string) : histogram =
  get_or_add t.mu t.histograms name (fun () ->
      { hname = name; hmu = Mutex.create (); core = Histo.create () })

(* --- mutation (no-ops while tracing is disabled) --- *)

let add (c : counter) (n : int) =
  if Runtime.tracing_enabled () then ignore (Atomic.fetch_and_add c.cell n)

let inc (c : counter) = add c 1
let counter_value (c : counter) = Atomic.get c.cell

(* Cold-path mutators that bypass the runtime toggle: used by explicit
   snapshot transfers and deterministic harnesses (e.g.
   [Larch_net.Channel.observe], `larch report`) where the caller, not the
   toggle, decides that the data is wanted. *)
let force_add (c : counter) (n : int) = ignore (Atomic.fetch_and_add c.cell n)

let set_gauge (g : gauge) (v : float) =
  if Runtime.tracing_enabled () then with_lock g.gmu (fun () -> g.gval <- v)

let force_set_gauge (g : gauge) (v : float) = with_lock g.gmu (fun () -> g.gval <- v)
let gauge_value (g : gauge) = g.gval

let force_observe (h : histogram) (v : float) =
  with_lock h.hmu (fun () -> Histo.observe h.core v)

let observe (h : histogram) (v : float) =
  if Runtime.tracing_enabled () then force_observe h v

(* --- queries --- *)

let histogram_count (h : histogram) = Histo.count h.core
let histogram_sum (h : histogram) = Histo.sum h.core
let histogram_mean (h : histogram) = Histo.mean h.core
let histogram_min (h : histogram) = Histo.min_value h.core
let histogram_max (h : histogram) = Histo.max_value h.core

(* q in [0,1]; resolution is one log-linear sub-bucket (≈1%), clamped to
   the observed min/max.  This fixes the old log₂ shim's midpoint bias
   (geometric bucket midpoints up to 41% from every sample in the bucket)
   while keeping the call signature PR 1 call sites compiled against. *)
let percentile (h : histogram) (q : float) : float =
  with_lock h.hmu (fun () -> Histo.percentile h.core q)

let reset (t : t) =
  with_lock t.mu (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) t.counters;
      Hashtbl.iter (fun _ g -> g.gval <- 0.) t.gauges;
      Hashtbl.iter (fun _ h -> with_lock h.hmu (fun () -> Histo.reset h.core)) t.histograms)

(* --- snapshot: a deterministic, name-sorted view of a registry --- *)

type hist_snapshot = {
  hs_count : int;
  hs_sum : float;
  hs_min : float;
  hs_max : float;
  hs_mean : float;
  hs_p50 : float;
  hs_p90 : float;
  hs_p99 : float;
  hs_p999 : float;
  hs_buckets : (float * int) list; (* (bucket upper bound, count), increasing *)
}

type snapshot = {
  s_counters : (string * int) list;
  s_gauges : (string * float) list;
  s_histograms : (string * hist_snapshot) list;
}

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let hist_snapshot (h : histogram) : hist_snapshot =
  with_lock h.hmu (fun () ->
      let c = h.core in
      {
        hs_count = Histo.count c;
        hs_sum = Histo.sum c;
        hs_min = Histo.min_value c;
        hs_max = Histo.max_value c;
        hs_mean = Histo.mean c;
        hs_p50 = Histo.percentile c 0.50;
        hs_p90 = Histo.percentile c 0.90;
        hs_p99 = Histo.percentile c 0.99;
        hs_p999 = Histo.percentile c 0.999;
        hs_buckets = List.map (fun (_, hi, n) -> (hi, n)) (Histo.nonzero_buckets c);
      })

let snapshot (t : t) : snapshot =
  with_lock t.mu (fun () ->
      {
        s_counters = List.map (fun (n, c) -> (n, counter_value c)) (sorted_bindings t.counters);
        s_gauges = List.map (fun (n, g) -> (n, g.gval)) (sorted_bindings t.gauges);
        s_histograms = List.map (fun (n, h) -> (n, hist_snapshot h)) (sorted_bindings t.histograms);
      })

(* --- merge: fold [src] into [into] (cross-registry aggregation) --- *)

(* Bypasses the runtime toggle like the [force_*] family: merging is an
   explicit cold-path aggregation step, not hot-path instrumentation.
   Counters and gauges add (a sharded pool's depth is the sum of the
   per-shard depths); histograms bucket-merge losslessly. *)
let merge ~(into : t) (src : t) : unit =
  let src_counters = with_lock src.mu (fun () -> sorted_bindings src.counters) in
  let src_gauges = with_lock src.mu (fun () -> sorted_bindings src.gauges) in
  let src_histograms = with_lock src.mu (fun () -> sorted_bindings src.histograms) in
  List.iter
    (fun (name, c) ->
      let v = counter_value c in
      if v <> 0 then force_add (counter into name) v)
    src_counters;
  List.iter
    (fun (name, g) ->
      let v = g.gval in
      if v <> 0. then begin
        let dst = gauge into name in
        with_lock dst.gmu (fun () -> dst.gval <- dst.gval +. v)
      end)
    src_gauges;
  List.iter
    (fun (name, h) ->
      if Histo.count h.core > 0 then begin
        let dst = histogram into name in
        let copied = with_lock h.hmu (fun () -> Histo.copy h.core) in
        with_lock dst.hmu (fun () -> Histo.merge_into ~into:dst.core copied)
      end)
    src_histograms

(* --- rendering --- *)

let report (t : t) : string =
  let s = snapshot t in
  let buf = Buffer.create 1024 in
  if s.s_counters <> [] then begin
    Buffer.add_string buf "counters:\n";
    List.iter
      (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "  %-42s %12d\n" name v))
      s.s_counters
  end;
  if s.s_gauges <> [] then begin
    Buffer.add_string buf "gauges:\n";
    List.iter
      (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "  %-42s %12.3f\n" name v))
      s.s_gauges
  end;
  if s.s_histograms <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "histograms (ms):\n  %-42s %8s %9s %9s %9s %9s %9s\n" "name" "count"
         "mean" "p50" "p95" "p99" "max");
    List.iter
      (fun (name, _) ->
        let h = histogram t name in
        if histogram_count h > 0 then
          Buffer.add_string buf
            (Printf.sprintf "  %-42s %8d %9.2f %9.2f %9.2f %9.2f %9.2f\n" name
               (histogram_count h) (histogram_mean h) (percentile h 0.50) (percentile h 0.95)
               (percentile h 0.99) (histogram_max h)))
      s.s_histograms
  end;
  Buffer.contents buf
