(* Process-global metrics registry: named counters, gauges, and
   log₂-bucketed latency histograms.

   Naming convention: [layer.component.op], lowercase, dot-separated
   (e.g. "net.fido2.bytes_up", "log.records.stored", "span.zkboo.prove").

   Counters are lock-free ([Atomic]); gauges and histograms take a
   per-metric mutex, which is fine because they are only touched at span
   granularity, never per-gate/per-byte.  All mutating entry points are
   no-ops while [Runtime.tracing] is off, so an uninstrumented run pays one
   atomic load per call site and allocates nothing. *)

type counter = { cname : string; cell : int Atomic.t }
type gauge = { gname : string; gmu : Mutex.t; mutable gval : float }

(* Histogram bucket i counts observations v with 2^(i-bias-1) <= v <
   2^(i-bias); percentiles are estimated at the geometric midpoint of the
   winning bucket, clamped to the observed min/max. *)
let n_buckets = 64
let bias = 32

type histogram = {
  hname : string;
  hmu : Mutex.t;
  counts : int array; (* n_buckets *)
  mutable total : int;
  mutable sum : float;
  mutable hmin : float;
  mutable hmax : float;
}

type t = {
  mu : Mutex.t;
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create () : t =
  {
    mu = Mutex.create ();
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 32;
  }

(* The registry used by all built-in instrumentation. *)
let default : t = create ()

let with_lock mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let get_or_add (type v) mu (tbl : (string, v) Hashtbl.t) (name : string) (mk : unit -> v) : v =
  with_lock mu (fun () ->
      match Hashtbl.find_opt tbl name with
      | Some m -> m
      | None ->
          let m = mk () in
          Hashtbl.replace tbl name m;
          m)

let counter (t : t) (name : string) : counter =
  get_or_add t.mu t.counters name (fun () -> { cname = name; cell = Atomic.make 0 })

let gauge (t : t) (name : string) : gauge =
  get_or_add t.mu t.gauges name (fun () -> { gname = name; gmu = Mutex.create (); gval = 0. })

let histogram (t : t) (name : string) : histogram =
  get_or_add t.mu t.histograms name (fun () ->
      {
        hname = name;
        hmu = Mutex.create ();
        counts = Array.make n_buckets 0;
        total = 0;
        sum = 0.;
        hmin = infinity;
        hmax = neg_infinity;
      })

(* --- mutation (no-ops while tracing is disabled) --- *)

let add (c : counter) (n : int) =
  if Runtime.tracing_enabled () then ignore (Atomic.fetch_and_add c.cell n)

let inc (c : counter) = add c 1
let counter_value (c : counter) = Atomic.get c.cell

(* Cold-path export that bypasses the runtime toggle: used by explicit
   snapshot transfers (e.g. [Larch_net.Channel.observe]) where the caller,
   not the toggle, decides that the data is wanted. *)
let force_add (c : counter) (n : int) = ignore (Atomic.fetch_and_add c.cell n)

let set_gauge (g : gauge) (v : float) =
  if Runtime.tracing_enabled () then with_lock g.gmu (fun () -> g.gval <- v)

let gauge_value (g : gauge) = g.gval

let bucket_of (v : float) : int =
  if v <= 0. || Float.is_nan v then 0
  else begin
    let _, e = Float.frexp v in
    (* v in [2^(e-1), 2^e) *)
    max 0 (min (n_buckets - 1) (e + bias))
  end

let observe (h : histogram) (v : float) =
  if Runtime.tracing_enabled () then
    with_lock h.hmu (fun () ->
        h.counts.(bucket_of v) <- h.counts.(bucket_of v) + 1;
        h.total <- h.total + 1;
        h.sum <- h.sum +. v;
        if v < h.hmin then h.hmin <- v;
        if v > h.hmax then h.hmax <- v)

(* --- queries --- *)

let histogram_count (h : histogram) = h.total
let histogram_sum (h : histogram) = h.sum
let histogram_mean (h : histogram) = if h.total = 0 then 0. else h.sum /. float_of_int h.total

(* q in [0,1]; resolution is one log₂ bucket (a factor of 2). *)
let percentile (h : histogram) (q : float) : float =
  if h.total = 0 then 0.
  else begin
    let rank = int_of_float (ceil (q *. float_of_int h.total)) in
    let rank = max 1 (min h.total rank) in
    let cum = ref 0 and found = ref (n_buckets - 1) in
    (try
       for i = 0 to n_buckets - 1 do
         cum := !cum + h.counts.(i);
         if !cum >= rank then begin
           found := i;
           raise Exit
         end
       done
     with Exit -> ());
    let lo = Float.ldexp 1. (!found - bias - 1) in
    let mid = lo *. sqrt 2. in
    (* clamp the bucket estimate to the actually observed range *)
    max h.hmin (min h.hmax mid)
  end

let reset (t : t) =
  with_lock t.mu (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) t.counters;
      Hashtbl.iter (fun _ g -> g.gval <- 0.) t.gauges;
      Hashtbl.iter
        (fun _ h ->
          Array.fill h.counts 0 n_buckets 0;
          h.total <- 0;
          h.sum <- 0.;
          h.hmin <- infinity;
          h.hmax <- neg_infinity)
        t.histograms)

(* --- rendering --- *)

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let report (t : t) : string =
  let buf = Buffer.create 1024 in
  let counters = sorted_bindings t.counters
  and gauges = sorted_bindings t.gauges
  and histograms = sorted_bindings t.histograms in
  if counters <> [] then begin
    Buffer.add_string buf "counters:\n";
    List.iter
      (fun (name, c) -> Buffer.add_string buf (Printf.sprintf "  %-42s %12d\n" name (counter_value c)))
      counters
  end;
  if gauges <> [] then begin
    Buffer.add_string buf "gauges:\n";
    List.iter
      (fun (name, g) -> Buffer.add_string buf (Printf.sprintf "  %-42s %12.3f\n" name g.gval))
      gauges
  end;
  if histograms <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "histograms (ms):\n  %-42s %8s %9s %9s %9s %9s %9s\n" "name" "count"
         "mean" "p50" "p95" "p99" "max");
    List.iter
      (fun (name, h) ->
        if h.total > 0 then
          Buffer.add_string buf
            (Printf.sprintf "  %-42s %8d %9.2f %9.2f %9.2f %9.2f %9.2f\n" name h.total
               (histogram_mean h) (percentile h 0.50) (percentile h 0.95) (percentile h 0.99)
               h.hmax))
      histograms
  end;
  Buffer.contents buf
