(** Flight recorder: a fixed-size ring of timestamped registry snapshots
    plus recent event-stream tails, dumped as one text report when a
    component crashes ([Disk.crash], transport crash-restart).

    Timestamps come from [Runtime.now], so a harness driving the
    simulated clock gets byte-identical dumps across seeded runs.  Dumps
    contain metric names, numbers, and [Events.to_string] lines only — no
    relying-party identifiers (paper §2.3; grep-enforced by the privacy
    test). *)

type t

val create : ?capacity:int -> ?registry:Metrics.t -> unit -> t
(** Ring of [capacity] snapshots (default 32) over [registry] (default
    {!Metrics.default}). *)

val default : t
(** The recorder the built-in crash hooks dump. *)

val record : t -> unit
(** Push one timestamped snapshot + the newest few events into the ring,
    evicting the oldest entry when full.  Call at period boundaries from
    the driving harness. *)

val incident : ?detail:string -> t -> string -> unit
(** [incident t reason] renders the ring plus the current registry state
    into a dump, stores it (see {!last_dump}), and passes it to the sink
    if one is installed. *)

val set_sink : t -> (string -> unit) option -> unit
(** Where finished dumps go (e.g. stderr, a file).  Default: nowhere —
    the dump is only retained in memory. *)

val last_dump : t -> string option
val incident_count : t -> int

val clear : t -> unit
(** Empty the ring and forget dumps (tests). *)
