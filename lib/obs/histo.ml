(* High-resolution mergeable histogram (the HDR-histogram idea, sized for
   latency-in-milliseconds workloads).

   Log-linear bucketing: each power-of-two range ("octave") is split into
   64 linear sub-buckets, so every bucket spans a relative width of at most
   1/64 ≈ 1.6% of its value and a midpoint estimate is within ≈0.8% of any
   sample that landed in it — the ≈1%-error quantiles the capacity report
   needs, versus the factor-of-2 resolution of the old log₂ core.

   Bucket index extraction is a bit trick on the IEEE-754 representation:
   the biased exponent selects the octave and the top 6 mantissa bits the
   sub-bucket, so [observe] is two shifts and two masks — no [log], no
   [frexp], no allocation beyond the boxed float already in hand.

   Covered range: [2^-32, 2^32) ≈ [2.3e-10, 4.3e9].  Values below (and
   zero, negatives, NaN) clamp into bucket 0; values at or above the top
   clamp into the last bucket.  Exact min/max are tracked separately so
   quantile estimates can be clamped to the observed range (p0 never
   undershoots the minimum, p100 never overshoots the maximum).

   Histograms merge exactly: bucket counts are integers, so
   [merge a b] loses nothing relative to observing both streams into one
   histogram — the primitive a domain-sharded log needs to aggregate
   per-domain registries.  Merge is commutative and associative on the
   counts; the float [sum] is commutative and associative only up to
   rounding, which is why the qcheck properties compare quantiles, not
   sums.  This module is plain data + arithmetic: no locks, no clock reads,
   no I/O — thread-safety and enable-gating live in {!Metrics}. *)

let sub_bits = 6
let sub_buckets = 1 lsl sub_bits (* 64 *)
let min_exp = -32
let max_exp = 31
let n_octaves = max_exp - min_exp + 1
let n_buckets = n_octaves * sub_buckets (* 4096 *)

type t = {
  counts : int array; (* n_buckets *)
  mutable total : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
}

let create () : t =
  { counts = Array.make n_buckets 0; total = 0; sum = 0.; vmin = infinity; vmax = neg_infinity }

let reset (t : t) : unit =
  Array.fill t.counts 0 n_buckets 0;
  t.total <- 0;
  t.sum <- 0.;
  t.vmin <- infinity;
  t.vmax <- neg_infinity

(* IEEE-754 double: bit 63 sign, bits 62-52 biased exponent, bits 51-0
   mantissa.  For v in [2^k, 2^(k+1)) the biased exponent is k + 1023 and
   the top 6 mantissa bits index the linear sub-bucket. *)
let index_of (v : float) : int =
  if not (v > 0.) then 0 (* zero, negatives, NaN *)
  else begin
    let bits = Int64.bits_of_float v in
    let biased = Int64.to_int (Int64.shift_right_logical bits 52) land 0x7ff in
    let oct = biased - 1023 - min_exp in
    if oct < 0 then 0 (* subnormals and anything below 2^min_exp *)
    else if oct >= n_octaves then n_buckets - 1
    else (oct lsl sub_bits) lor (Int64.to_int (Int64.shift_right_logical bits 46) land (sub_buckets - 1))
  end

(* Bucket i covers [lo, hi): lo = 2^e * (1 + s/64). *)
let bucket_lo (i : int) : float =
  let oct = i lsr sub_bits and sub = i land (sub_buckets - 1) in
  Float.ldexp (1. +. (float_of_int sub /. float_of_int sub_buckets)) (oct + min_exp)

let bucket_hi (i : int) : float =
  let oct = i lsr sub_bits and sub = i land (sub_buckets - 1) in
  Float.ldexp (1. +. (float_of_int (sub + 1) /. float_of_int sub_buckets)) (oct + min_exp)

let bucket_mid (i : int) : float =
  let oct = i lsr sub_bits and sub = i land (sub_buckets - 1) in
  Float.ldexp (1. +. ((float_of_int sub +. 0.5) /. float_of_int sub_buckets)) (oct + min_exp)

let observe (t : t) (v : float) : unit =
  let i = index_of v in
  t.counts.(i) <- t.counts.(i) + 1;
  t.total <- t.total + 1;
  t.sum <- t.sum +. v;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v

let count (t : t) : int = t.total
let sum (t : t) : float = t.sum
let min_value (t : t) : float = t.vmin
let max_value (t : t) : float = t.vmax
let mean (t : t) : float = if t.total = 0 then 0. else t.sum /. float_of_int t.total

(* The q-quantile estimate: take the rank-⌈q·n⌉ sample's bucket (the same
   rank convention as sorting the stream and indexing it), answer the
   bucket midpoint, clamp to the observed [min, max].  The old log₂ core
   answered geometric bucket midpoints that could sit 41% away from every
   sample in the bucket; here the midpoint is within ≈0.8%. *)
let percentile (t : t) (q : float) : float =
  if t.total = 0 then 0.
  else begin
    let rank = int_of_float (ceil (q *. float_of_int t.total)) in
    let rank = max 1 (min t.total rank) in
    let i = ref 0 and cum = ref 0 in
    (try
       for j = 0 to n_buckets - 1 do
         cum := !cum + t.counts.(j);
         if !cum >= rank then begin
           i := j;
           raise Exit
         end
       done
     with Exit -> ());
    Float.max t.vmin (Float.min t.vmax (bucket_mid !i))
  end

let copy (t : t) : t =
  { counts = Array.copy t.counts; total = t.total; sum = t.sum; vmin = t.vmin; vmax = t.vmax }

(* In-place merge: add [src]'s buckets into [into].  Lossless on counts. *)
let merge_into ~(into : t) (src : t) : unit =
  for i = 0 to n_buckets - 1 do
    if src.counts.(i) <> 0 then into.counts.(i) <- into.counts.(i) + src.counts.(i)
  done;
  into.total <- into.total + src.total;
  into.sum <- into.sum +. src.sum;
  if src.vmin < into.vmin then into.vmin <- src.vmin;
  if src.vmax > into.vmax then into.vmax <- src.vmax

let merge (a : t) (b : t) : t =
  let m = copy a in
  merge_into ~into:m b;
  m

(* Non-empty buckets in index order: (lo, hi, count).  The exporters build
   Prometheus cumulative `le` series and JSON bucket arrays from this. *)
let iter_nonzero (t : t) (f : lo:float -> hi:float -> count:int -> unit) : unit =
  for i = 0 to n_buckets - 1 do
    if t.counts.(i) <> 0 then f ~lo:(bucket_lo i) ~hi:(bucket_hi i) ~count:t.counts.(i)
  done

let nonzero_buckets (t : t) : (float * float * int) list =
  let acc = ref [] in
  iter_nonzero t (fun ~lo ~hi ~count -> acc := (lo, hi, count) :: !acc);
  List.rev !acc
