(* Registry exporters: Prometheus text exposition and canonical JSON.

   Both render from a {!Metrics.snapshot}, so the output is deterministic:
   metric names sorted, histogram buckets in increasing bound order, floats
   printed through one shared formatter.  Determinism is what lets the
   capacity report digest its own metrics section and what keeps the
   privacy test greppable.

   Privacy (paper §2.3): these exporters are on the outside of the privacy
   boundary — everything they print is a metric name (static, layer.op
   style) or a number.  No label values, no free-form strings, so a
   relying-party identifier cannot leak through them unless someone names
   a metric after an RP; the privacy test greps both formats to catch
   exactly that. *)

(* One float formatter for both exporters.  Integers print without a
   fractional part ("12"), everything else as shortest round-trippable
   decimal-ish "%.9g" ("0.0225", "1.00000007e+09").  Both are valid
   Prometheus and JSON number syntax. *)
let fstr (v : float) : string =
  if Float.is_nan v then "0"
  else if v = infinity || v = neg_infinity then "0"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

(* --- Prometheus text exposition --- *)

(* "net.fido2.bytes_up" -> "larch_net_fido2_bytes_up". *)
let prom_name (name : string) : string =
  let b = Buffer.create (String.length name + 6) in
  Buffer.add_string b "larch_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

let prometheus (t : Metrics.t) : string =
  let s = Metrics.snapshot t in
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string buf l) fmt in
  List.iter
    (fun (name, v) ->
      let p = prom_name name in
      line "# TYPE %s counter\n%s %d\n" p p v)
    s.Metrics.s_counters;
  List.iter
    (fun (name, v) ->
      let p = prom_name name in
      line "# TYPE %s gauge\n%s %s\n" p p (fstr v))
    s.Metrics.s_gauges;
  List.iter
    (fun (name, h) ->
      let p = prom_name name in
      line "# TYPE %s histogram\n" p;
      (* Prometheus buckets are cumulative and keyed by upper bound. *)
      let cum = ref 0 in
      List.iter
        (fun (hi, n) ->
          cum := !cum + n;
          line "%s_bucket{le=\"%s\"} %d\n" p (fstr hi) !cum)
        h.Metrics.hs_buckets;
      line "%s_bucket{le=\"+Inf\"} %d\n" p h.Metrics.hs_count;
      line "%s_sum %s\n" p (fstr h.Metrics.hs_sum);
      line "%s_count %d\n" p h.Metrics.hs_count)
    s.Metrics.s_histograms;
  Buffer.contents buf

(* --- canonical JSON --- *)

let json_escape (s : string) : string =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_obj (buf : Buffer.t) (fields : (string * (unit -> unit)) list) : unit =
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, emit) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '"';
      Buffer.add_string buf (json_escape k);
      Buffer.add_string buf "\":";
      emit ())
    fields;
  Buffer.add_char buf '}'

let json_of_snapshot (s : Metrics.snapshot) : string =
  let buf = Buffer.create 4096 in
  let str v = Buffer.add_string buf v in
  let hist (h : Metrics.hist_snapshot) () =
    json_obj buf
      [
        ("count", fun () -> str (string_of_int h.Metrics.hs_count));
        ("sum", fun () -> str (fstr h.Metrics.hs_sum));
        ("min", fun () -> str (fstr h.Metrics.hs_min));
        ("max", fun () -> str (fstr h.Metrics.hs_max));
        ("mean", fun () -> str (fstr h.Metrics.hs_mean));
        ("p50", fun () -> str (fstr h.Metrics.hs_p50));
        ("p90", fun () -> str (fstr h.Metrics.hs_p90));
        ("p99", fun () -> str (fstr h.Metrics.hs_p99));
        ("p999", fun () -> str (fstr h.Metrics.hs_p999));
        ( "buckets",
          fun () ->
            str "[";
            List.iteri
              (fun i (hi, n) ->
                if i > 0 then str ",";
                str (Printf.sprintf "[%s,%d]" (fstr hi) n))
              h.Metrics.hs_buckets;
            str "]" );
      ]
  in
  json_obj buf
    [
      ( "counters",
        fun () ->
          json_obj buf
            (List.map (fun (n, v) -> (n, fun () -> str (string_of_int v))) s.Metrics.s_counters)
      );
      ( "gauges",
        fun () ->
          json_obj buf (List.map (fun (n, v) -> (n, fun () -> str (fstr v))) s.Metrics.s_gauges)
      );
      ( "histograms",
        fun () -> json_obj buf (List.map (fun (n, h) -> (n, hist h)) s.Metrics.s_histograms) );
    ];
  Buffer.contents buf

let json (t : Metrics.t) : string = json_of_snapshot (Metrics.snapshot t)
