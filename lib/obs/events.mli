(** Structured log-service event stream.

    PRIVACY RULE (paper §2.3): an event must never carry a relying-party
    identifier — no RP name, no RP id hash, no registration identifier, no
    ciphertext.  Allowed: client id (the log already knows it), the
    authentication method, severity, counts, protocol-step error strings.
    Enforced end-to-end by [test/test_obs.ml].

    Disabled (the default; see {!Runtime.set_events}), {!emit} is one
    atomic load. *)

type severity = Debug | Info | Warn | Error

type kind =
  | Enroll
  | Register
  | Auth_begin
  | Auth_commit
  | Auth_finish
  | Policy_denied
  | Objection
  | Revocation
  | Audit
  | Backup
  | Recovery
  | Protocol_error
  | Transport_retry  (** a client↔log exchange is being re-attempted *)
  | Transport_timeout  (** an exchange attempt timed out (drop / excess delay) *)
  | Transport_fault  (** an injected or detected transport fault (corruption, crash, restart) *)
  | Failover  (** a multi-log deployment substituted a crashed log mid-flight *)

type event = {
  seq : int;
  time : float;
  severity : severity;
  kind : kind;
  method_ : string option;  (** "fido2" | "totp" | "password" *)
  client : string option;
  detail : string;
}

val emit :
  ?severity:severity -> ?method_:string -> ?client:string -> kind -> string -> unit
(** Append to the bounded in-memory ring (newest 4096 kept) and fan out to
    subscribers.  No-op while events are disabled. *)

val recent : unit -> event list
(** Buffered events, oldest first. *)

val clear : unit -> unit
(** Drop buffered events and subscribers, and rewind the sequence counter
    so a cleared stream replays identically (fault-replay determinism). *)

val subscribe : (event -> unit) -> unit
(** Push every subsequent event to [f] (called outside the ring lock). *)

val severity_to_string : severity -> string
val kind_to_string : kind -> string
val to_string : event -> string
