(* Hierarchical tracing spans.

   [with_span "zkboo.prove" f] measures [f] on the monotonic clock and
   records a span whose parent is the span currently open on the same
   domain.  Each domain keeps its own open-span stack (domain-local
   storage), so spans opened inside [Larch_util.Parallel] workers nest
   correctly; the parallel runner seeds each worker with the spawning
   domain's current span via [with_parent], stitching the forest back into
   one tree.

   Finished spans aggregate into a call tree renderable as an indented text
   report ([report]) and as Chrome trace_event JSON ([to_chrome_json],
   loadable in chrome://tracing / Perfetto).  Every finished span also
   feeds the latency histogram "span.<name>" in [Metrics.default].

   When tracing is disabled the hot path is [if Atomic.get then f ()]:
   no clock read, no allocation. *)

type attr = Int of int | Float of float | Str of string

type span = {
  id : int;
  parent : int; (* -1 = root *)
  name : string;
  domain : int;
  start_ns : int64; (* monotonic, relative to [epoch] *)
  mutable dur_ns : int64;
  mutable attrs : (string * attr) list; (* newest first *)
}

let now_ns () = Monotonic_clock.now ()

(* trace epoch: set at [reset]; span timestamps are offsets from it *)
let epoch = Atomic.make (now_ns ())
let next_id = Atomic.make 0

let finished_mu = Mutex.create ()
let finished : span list ref = ref [] (* newest first *)

let stack_key : span list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

(* Trace-viewer row override.  OCaml domain ids are recycled slot indices:
   two Parallel sections spawn "domain 1" twice and their spans interleave
   into one chrome://tracing row.  [with_tid] pins spans opened in its
   scope to a caller-chosen stable row instead (Parallel uses lane
   1000 + worker index). *)
let tid_key : int option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let current_tid () =
  match !(Domain.DLS.get tid_key) with Some t -> t | None -> (Domain.self () :> int)

let with_tid (tid : int) (f : unit -> 'a) : 'a =
  let slot = Domain.DLS.get tid_key in
  let saved = !slot in
  slot := Some tid;
  Fun.protect ~finally:(fun () -> slot := saved) f

let reset () =
  Mutex.lock finished_mu;
  finished := [];
  Mutex.unlock finished_mu;
  Atomic.set epoch (now_ns ())

let record (sp : span) =
  Mutex.lock finished_mu;
  finished := sp :: !finished;
  Mutex.unlock finished_mu;
  Metrics.observe
    (Metrics.histogram Metrics.default ("span." ^ sp.name))
    (Int64.to_float sp.dur_ns /. 1e6)

let with_span (name : string) (f : unit -> 'a) : 'a =
  if not (Runtime.tracing_enabled ()) then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let parent = match !stack with [] -> -1 | s :: _ -> s.id in
    let sp =
      {
        id = Atomic.fetch_and_add next_id 1;
        parent;
        name;
        domain = current_tid ();
        start_ns = Int64.sub (now_ns ()) (Atomic.get epoch);
        dur_ns = 0L;
        attrs = [];
      }
    in
    stack := sp :: !stack;
    let finish () =
      sp.dur_ns <- Int64.sub (Int64.sub (now_ns ()) (Atomic.get epoch)) sp.start_ns;
      (stack := match !stack with _ :: tl -> tl | [] -> []);
      record sp
    in
    match f () with
    | r ->
        finish ();
        r
    | exception e ->
        finish ();
        raise e
  end

(* Attach an attribute to the innermost open span on this domain.  Call
   sites pass unboxed ints/static strings so the disabled path allocates
   nothing. *)
let add_attr (name : string) (v : attr) =
  match !(Domain.DLS.get stack_key) with
  | [] -> ()
  | sp :: _ -> sp.attrs <- (name, v) :: sp.attrs

let add_int (name : string) (v : int) = if Runtime.tracing_enabled () then add_attr name (Int v)

let add_str (name : string) (v : string) =
  if Runtime.tracing_enabled () then add_attr name (Str v)

let add_float (name : string) (v : float) =
  if Runtime.tracing_enabled () then add_attr name (Float v)

(* --- cross-domain stitching (used by Larch_util.Parallel) --- *)

let current () : int option =
  match !(Domain.DLS.get stack_key) with [] -> None | s :: _ -> Some s.id

(* Run [f] with span [pid] as the adoption parent for spans opened on this
   domain while no local span is open.  The ghost context frame is never
   recorded. *)
let with_parent (pid : int option) (f : unit -> 'a) : 'a =
  match pid with
  | None -> f ()
  | Some id ->
      let stack = Domain.DLS.get stack_key in
      let saved = !stack in
      let ghost =
        {
          id;
          parent = -1;
          name = "<context>";
          domain = (Domain.self () :> int);
          start_ns = 0L;
          dur_ns = 0L;
          attrs = [];
        }
      in
      stack := ghost :: saved;
      Fun.protect ~finally:(fun () -> stack := saved) f

(* Measure [f] on the monotonic clock, recording a span when tracing is
   enabled.  Always returns the measured duration in seconds, so CLI demos
   and the bench can print timings whether or not spans are being
   collected — the one timing substrate both share. *)
let timed (name : string) (f : unit -> 'a) : 'a * float =
  let t0 = now_ns () in
  let r = with_span name f in
  (r, Int64.to_float (Int64.sub (now_ns ()) t0) /. 1e9)

(* --- inspection --- *)

(* Finished spans in start order. *)
let spans () : span list =
  Mutex.lock finished_mu;
  let l = !finished in
  Mutex.unlock finished_mu;
  List.sort
    (fun a b ->
      match Int64.compare a.start_ns b.start_ns with 0 -> compare a.id b.id | c -> c)
    l

let span_count () = List.length (spans ())
let ms_of_ns ns = Int64.to_float ns /. 1e6

(* Walk a span's ancestry (by parent id) within [all]; used by tests. *)
let ancestors (all : span list) (sp : span) : span list =
  let by_id = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace by_id s.id s) all;
  let rec go acc id =
    if id < 0 then List.rev acc
    else
      match Hashtbl.find_opt by_id id with
      | None -> List.rev acc
      | Some p -> go (p :: acc) p.parent
  in
  go [] sp.parent

(* --- text report --- *)

let attr_to_string = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.3f" f
  | Str s -> s

let attrs_to_string (sp : span) : string =
  match sp.attrs with
  | [] -> ""
  | attrs ->
      "  "
      ^ String.concat " "
          (List.rev_map (fun (k, v) -> Printf.sprintf "%s=%s" k (attr_to_string v)) attrs)

(* Children grouped under their parent; same-name sibling runs of length
   > 1 collapse into one aggregate line so e.g. per-batch ZKBoo spans stay
   readable at 137 repetitions. *)
let report () : string =
  let all = spans () in
  let buf = Buffer.create 1024 in
  let children = Hashtbl.create 64 in
  let ids = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace ids s.id ()) all;
  List.iter
    (fun s ->
      (* spans whose parent never finished (or belonged to a cleared trace)
         render as roots *)
      let p = if s.parent >= 0 && Hashtbl.mem ids s.parent then s.parent else -1 in
      Hashtbl.replace children p (s :: (Option.value ~default:[] (Hashtbl.find_opt children p))))
    (List.rev all);
  let rec render depth parent =
    let kids = Option.value ~default:[] (Hashtbl.find_opt children parent) in
    let indent = String.make (2 * depth) ' ' in
    let rec groups = function
      | [] -> ()
      | sp :: rest ->
          let same, rest' = List.partition (fun s -> s.name = sp.name) rest in
          (match same with
          | [] ->
              Buffer.add_string buf
                (Printf.sprintf "%s%-*s %9.1f ms%s\n" indent (max 1 (44 - (2 * depth))) sp.name
                   (ms_of_ns sp.dur_ns) (attrs_to_string sp));
              render (depth + 1) sp.id
          | _ ->
              let group = sp :: same in
              let total =
                List.fold_left (fun acc s -> acc +. ms_of_ns s.dur_ns) 0. group
              in
              let n = List.length group in
              Buffer.add_string buf
                (Printf.sprintf "%s%-*s %9.1f ms  (x%d, avg %.1f ms)%s\n" indent
                   (max 1 (44 - (2 * depth)))
                   sp.name total n
                   (total /. float_of_int n)
                   (attrs_to_string sp));
              (* render the first instance's subtree as the exemplar *)
              render (depth + 1) sp.id);
          groups rest'
    in
    groups kids
  in
  let n = List.length all in
  if n = 0 then "trace: no spans recorded (is tracing enabled?)\n"
  else begin
    let wall =
      List.fold_left
        (fun acc s -> max acc (Int64.add s.start_ns s.dur_ns))
        0L
        (List.filter (fun s -> not (Hashtbl.mem ids s.parent)) all)
    in
    Buffer.add_string buf
      (Printf.sprintf "trace: %d spans, %.1f ms wall  (x-N lines aggregate same-name siblings)\n" n
         (ms_of_ns wall));
    render 0 (-1);
    Buffer.contents buf
  end

(* --- Chrome trace_event export --- *)

let json_escape (s : string) : string =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let attr_to_json = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Str s -> Printf.sprintf "\"%s\"" (json_escape s)

(* Complete-event ("ph":"X") records; ts/dur in microseconds, tid = the
   span's row (the OCaml domain id, or the stable lane installed with
   [with_tid]), so domain utilization is visible on the timeline.  A
   "thread_name" metadata event labels each row. *)
let to_chrome_json () : string =
  let all = spans () in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let tids =
    List.sort_uniq compare (List.map (fun sp -> sp.domain) all)
  in
  List.iter
    (fun tid ->
      if not !first then Buffer.add_char buf ',';
      first := false;
      let label = if tid >= 1000 then Printf.sprintf "worker lane %d" (tid - 1000) else Printf.sprintf "domain %d" tid in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
           tid label))
    tids;
  List.iter
    (fun sp ->
      if not !first then Buffer.add_char buf ',';
      first := false;
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"larch\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d"
           (json_escape sp.name)
           (Int64.to_float sp.start_ns /. 1e3)
           (Int64.to_float sp.dur_ns /. 1e3)
           sp.domain);
      (match sp.attrs with
      | [] -> ()
      | attrs ->
          Buffer.add_string buf ",\"args\":{";
          Buffer.add_string buf
            (String.concat ","
               (List.rev_map
                  (fun (k, v) -> Printf.sprintf "\"%s\":%s" (json_escape k) (attr_to_json v))
                  attrs));
          Buffer.add_char buf '}');
      Buffer.add_char buf '}')
    all;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents buf

let write_chrome_json (path : string) : unit =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_chrome_json ()))
