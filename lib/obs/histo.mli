(** High-resolution mergeable histogram (HDR-style log-linear buckets).

    Each power-of-two octave is split into 64 linear sub-buckets, so any
    quantile estimate is within ≈1% of the true sample value (versus the
    factor-of-2 resolution of the old log₂ histograms).  Covered range
    [2^-32, 2^32); out-of-range, zero, negative and NaN observations clamp
    into the edge buckets, and the exact observed min/max are tracked so
    estimates never leave the observed range.

    Plain data + arithmetic: no locks, no clock, no allocation on
    [observe] beyond the argument float.  Thread-safety and the
    tracing-enabled gate live in {!Metrics}. *)

type t

val n_buckets : int
val create : unit -> t
val reset : t -> unit

val observe : t -> float -> unit
val count : t -> int
val sum : t -> float
val mean : t -> float

val min_value : t -> float
(** [infinity] while empty. *)

val max_value : t -> float
(** [neg_infinity] while empty. *)

val percentile : t -> float -> float
(** [percentile t q] for q in [0,1]: the bucket midpoint of the
    rank-⌈q·n⌉ sample, clamped to the observed [min, max]; within ≈1% of
    the true quantile.  0 when empty. *)

val index_of : float -> int
(** Bucket index of a value (exposed for tests). *)

val bucket_lo : int -> float
val bucket_hi : int -> float
val bucket_mid : int -> float

val copy : t -> t

val merge_into : into:t -> t -> unit
(** Add [src]'s buckets into [into].  Lossless on counts: merging equals
    having observed both streams into one histogram.  Commutative and
    associative on counts (the float [sum] only up to rounding). *)

val merge : t -> t -> t
(** Pure merge into a fresh histogram. *)

val iter_nonzero : t -> (lo:float -> hi:float -> count:int -> unit) -> unit
(** Non-empty buckets in increasing value order. *)

val nonzero_buckets : t -> (float * float * int) list
