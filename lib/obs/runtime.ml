(* Process-wide observability switches.

   Tracing (spans + metrics) and the log-service event stream are gated
   separately: a deployment may want the operational event stream always on
   while paying for spans only during an investigation.  Both default to
   off; the disabled hot path is a single [Atomic.get] and allocates
   nothing, so instrumentation can stay compiled into every layer.

   [Atomic.t] rather than [ref] because spans are opened and metrics bumped
   from worker domains ([Larch_util.Parallel]). *)

let tracing = Atomic.make false
let events = Atomic.make false

(* Wall-clock source for event timestamps.  Defaults to the real clock;
   deterministic harnesses (the fault-injection tests, `larch faults`)
   install the simulated clock so two runs with the same seed produce
   byte-identical event streams. *)
let time_source : (unit -> float) Atomic.t = Atomic.make Unix.gettimeofday

let now () = (Atomic.get time_source) ()

let set_time_source = function
  | Some f -> Atomic.set time_source f
  | None -> Atomic.set time_source Unix.gettimeofday

let tracing_enabled () = Atomic.get tracing
let events_enabled () = Atomic.get events
let set_tracing b = Atomic.set tracing b
let set_events b = Atomic.set events b

let enable_all () =
  set_tracing true;
  set_events true

let disable_all () =
  set_tracing false;
  set_events false
