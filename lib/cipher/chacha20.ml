(* ChaCha20 stream cipher (RFC 8439).

   The paper's TOTP circuit uses ChaCha20 for in-circuit encryption; here the
   software ChaCha20 additionally backs the PRG used to compress presignature
   shares (§7 "Optimizations") and the garbling randomness. *)

let mask32 = 0xffffffff

let rotl x n = ((x lsl n) lor (x lsr (32 - n))) land mask32

let le32 (s : string) (off : int) : int =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

(* Consecutive keystream blocks written straight into [buf] at [pos].

   This is the allocation-free hot path behind the PRG (ZKBoo random
   tapes pull ~24k blocks per proof): the key schedule is parsed once,
   the 20 rounds run over 16 let-bound ints (registers, no state array,
   no bounds checks), and words are stored with unsafe byte writes. *)
let blocks_into ~(key : string) ~(nonce : string) ~(counter : int) (buf : Bytes.t) ~(pos : int)
    ~(nblocks : int) : unit =
  if String.length key <> 32 then invalid_arg "Chacha20.blocks_into: key must be 32 bytes";
  if String.length nonce <> 12 then invalid_arg "Chacha20.blocks_into: nonce must be 12 bytes";
  if pos < 0 || nblocks < 0 || pos + (64 * nblocks) > Bytes.length buf then
    invalid_arg "Chacha20.blocks_into: out of bounds";
  let k0 = le32 key 0 and k1 = le32 key 4 and k2 = le32 key 8 and k3 = le32 key 12 in
  let k4 = le32 key 16 and k5 = le32 key 20 and k6 = le32 key 24 and k7 = le32 key 28 in
  let n0 = le32 nonce 0 and n1 = le32 nonce 4 and n2 = le32 nonce 8 in
  for blk = 0 to nblocks - 1 do
    let ctr = (counter + blk) land mask32 in
    let rec rounds n x0 x1 x2 x3 x4 x5 x6 x7 x8 x9 x10 x11 x12 x13 x14 x15 =
      if n = 0 then begin
        let off = pos + (64 * blk) in
        let store i v0 =
          let v = v0 land mask32 in
          Bytes.unsafe_set buf (off + i) (Char.unsafe_chr (v land 0xff));
          Bytes.unsafe_set buf (off + i + 1) (Char.unsafe_chr ((v lsr 8) land 0xff));
          Bytes.unsafe_set buf (off + i + 2) (Char.unsafe_chr ((v lsr 16) land 0xff));
          Bytes.unsafe_set buf (off + i + 3) (Char.unsafe_chr ((v lsr 24) land 0xff))
        in
        store 0 (x0 + 0x61707865);
        store 4 (x1 + 0x3320646e);
        store 8 (x2 + 0x79622d32);
        store 12 (x3 + 0x6b206574);
        store 16 (x4 + k0);
        store 20 (x5 + k1);
        store 24 (x6 + k2);
        store 28 (x7 + k3);
        store 32 (x8 + k4);
        store 36 (x9 + k5);
        store 40 (x10 + k6);
        store 44 (x11 + k7);
        store 48 (x12 + ctr);
        store 52 (x13 + n0);
        store 56 (x14 + n1);
        store 60 (x15 + n2)
      end
      else begin
        (* column quarter-rounds *)
        let x0 = (x0 + x4) land mask32 in let x12 = rotl (x12 lxor x0) 16 in
        let x8 = (x8 + x12) land mask32 in let x4 = rotl (x4 lxor x8) 12 in
        let x0 = (x0 + x4) land mask32 in let x12 = rotl (x12 lxor x0) 8 in
        let x8 = (x8 + x12) land mask32 in let x4 = rotl (x4 lxor x8) 7 in
        let x1 = (x1 + x5) land mask32 in let x13 = rotl (x13 lxor x1) 16 in
        let x9 = (x9 + x13) land mask32 in let x5 = rotl (x5 lxor x9) 12 in
        let x1 = (x1 + x5) land mask32 in let x13 = rotl (x13 lxor x1) 8 in
        let x9 = (x9 + x13) land mask32 in let x5 = rotl (x5 lxor x9) 7 in
        let x2 = (x2 + x6) land mask32 in let x14 = rotl (x14 lxor x2) 16 in
        let x10 = (x10 + x14) land mask32 in let x6 = rotl (x6 lxor x10) 12 in
        let x2 = (x2 + x6) land mask32 in let x14 = rotl (x14 lxor x2) 8 in
        let x10 = (x10 + x14) land mask32 in let x6 = rotl (x6 lxor x10) 7 in
        let x3 = (x3 + x7) land mask32 in let x15 = rotl (x15 lxor x3) 16 in
        let x11 = (x11 + x15) land mask32 in let x7 = rotl (x7 lxor x11) 12 in
        let x3 = (x3 + x7) land mask32 in let x15 = rotl (x15 lxor x3) 8 in
        let x11 = (x11 + x15) land mask32 in let x7 = rotl (x7 lxor x11) 7 in
        (* diagonal quarter-rounds *)
        let x0 = (x0 + x5) land mask32 in let x15 = rotl (x15 lxor x0) 16 in
        let x10 = (x10 + x15) land mask32 in let x5 = rotl (x5 lxor x10) 12 in
        let x0 = (x0 + x5) land mask32 in let x15 = rotl (x15 lxor x0) 8 in
        let x10 = (x10 + x15) land mask32 in let x5 = rotl (x5 lxor x10) 7 in
        let x1 = (x1 + x6) land mask32 in let x12 = rotl (x12 lxor x1) 16 in
        let x11 = (x11 + x12) land mask32 in let x6 = rotl (x6 lxor x11) 12 in
        let x1 = (x1 + x6) land mask32 in let x12 = rotl (x12 lxor x1) 8 in
        let x11 = (x11 + x12) land mask32 in let x6 = rotl (x6 lxor x11) 7 in
        let x2 = (x2 + x7) land mask32 in let x13 = rotl (x13 lxor x2) 16 in
        let x8 = (x8 + x13) land mask32 in let x7 = rotl (x7 lxor x8) 12 in
        let x2 = (x2 + x7) land mask32 in let x13 = rotl (x13 lxor x2) 8 in
        let x8 = (x8 + x13) land mask32 in let x7 = rotl (x7 lxor x8) 7 in
        let x3 = (x3 + x4) land mask32 in let x14 = rotl (x14 lxor x3) 16 in
        let x9 = (x9 + x14) land mask32 in let x4 = rotl (x4 lxor x9) 12 in
        let x3 = (x3 + x4) land mask32 in let x14 = rotl (x14 lxor x3) 8 in
        let x9 = (x9 + x14) land mask32 in let x4 = rotl (x4 lxor x9) 7 in
        rounds (n - 1) x0 x1 x2 x3 x4 x5 x6 x7 x8 x9 x10 x11 x12 x13 x14 x15
      end
    in
    rounds 10 0x61707865 0x3320646e 0x79622d32 0x6b206574 k0 k1 k2 k3 k4 k5 k6 k7 ctr n0 n1 n2
  done

(* One 64-byte keystream block.  [key] is 32 bytes, [nonce] 12 bytes. *)
let block ~(key : string) ~(nonce : string) ~(counter : int) : string =
  let out = Bytes.create 64 in
  blocks_into ~key ~nonce ~counter out ~pos:0 ~nblocks:1;
  Bytes.unsafe_to_string out

let keystream ~key ~nonce ~(counter : int) (len : int) : string =
  let out = Bytes.create len in
  let full = len / 64 in
  blocks_into ~key ~nonce ~counter out ~pos:0 ~nblocks:full;
  let rem = len - (64 * full) in
  if rem > 0 then begin
    let last = block ~key ~nonce ~counter:(counter + full) in
    Bytes.blit_string last 0 out (64 * full) rem
  end;
  Bytes.unsafe_to_string out

let encrypt ~key ~nonce ?(counter = 1) (plaintext : string) : string =
  Larch_util.Bytesx.xor plaintext (keystream ~key ~nonce ~counter (String.length plaintext))

let decrypt = encrypt
