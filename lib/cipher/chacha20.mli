(** ChaCha20 stream cipher (RFC 8439): in-circuit encryption in the
    paper's TOTP circuit; here it also backs the PRG and backup sealing. *)

val block : key:string -> nonce:string -> counter:int -> string
(** One 64-byte keystream block; 32-byte key, 12-byte nonce. *)

val blocks_into :
  key:string -> nonce:string -> counter:int -> Bytes.t -> pos:int -> nblocks:int -> unit
(** [nblocks] consecutive keystream blocks written into the buffer at
    [pos] — the allocation-free path behind {!Larch_cipher.Prg} tape
    expansion.  @raise Invalid_argument on bad key/nonce/range. *)

val keystream : key:string -> nonce:string -> counter:int -> int -> string
val encrypt : key:string -> nonce:string -> ?counter:int -> string -> string
val decrypt : key:string -> nonce:string -> ?counter:int -> string -> string
