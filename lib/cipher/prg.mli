(** Seed-expandable PRG (ChaCha20): ZKBoo random tapes, presignature
    compression (§7), garbling randomness.  Streams are deterministic in
    the seed and invariant under read chunking. *)

type t

val create : string -> t
val next_bytes : t -> int -> string

val fill : t -> Bytes.t -> pos:int -> len:int -> unit
(** Write the next [len] stream bytes into the buffer at [pos] without
    intermediate allocation; identical stream to {!next_bytes}. *)

val next_bit : t -> int
val rand_bytes_of : t -> int -> string
