(** RFC 6962-style append-only Merkle tree with cached subtree hashes,
    inclusion/consistency proofs, and ECDSA-signed tree heads.

    The log service grows one tree per client over the canonical record
    encodings; clients verify proofs with the pure {!verify_inclusion} /
    {!verify_consistency} (RFC 9162 algorithms) without ever holding a
    tree.  Domain separation: leaf = H(0x00 ‖ data), interior node =
    H(0x01 ‖ left ‖ right). *)

val hash_len : int

val leaf_hash : string -> string
val node_hash : string -> string -> string

val empty_root : string
(** Root of the empty tree: H(""). *)

module Tree : sig
  type t

  val create : unit -> t

  val of_leaves : string list -> t
  (** Build by appending in order; [leaves] are raw encodings, hashed
      internally. *)

  val append : t -> string -> unit
  (** Append one leaf (raw encoding); amortized O(1) hashing. *)

  val size : t -> int

  val root : t -> string
  (** RFC 6962 MTH over all leaves; {!empty_root} when empty. *)

  val root_at : t -> int -> string
  (** Root of the tree restricted to its first [m] leaves, [m <= size]. *)

  val inclusion : t -> index:int -> string list
  (** Audit path for leaf [index] at the current size. *)

  val inclusion_at : t -> index:int -> size:int -> string list
  (** Audit path for leaf [index] against the tree of the first [size]
      leaves. *)

  val consistency : t -> old_size:int -> new_size:int -> string list
  (** Consistency proof from the tree of the first [old_size] leaves to
      the first [new_size]; empty when [old_size] is [0] or equals
      [new_size]. *)
end

val verify_inclusion :
  root:string -> size:int -> index:int -> leaf:string -> proof:string list -> bool
(** Pure RFC 9162 inclusion check: [leaf] (raw encoding) sits at [index]
    in the tree of [size] leaves whose head is [root]. *)

val verify_consistency :
  old_root:string -> old_size:int -> new_root:string -> new_size:int -> proof:string list -> bool
(** Pure RFC 9162 consistency check: the [old_size] tree is a prefix of
    the [new_size] tree. *)

(** Signed tree heads: (size, root, time) bound to a client id under the
    log's P-256 STH key.  RFC 6979 deterministic signing keeps seeded
    worlds byte-reproducible. *)
module Sth : sig
  type t = { size : int; root : string; time : float; signature : string }

  val sign :
    sk:Larch_ec.P256.Scalar.t -> client_id:string -> size:int -> root:string -> time:float -> t

  val verify : pk:Larch_ec.Point.t -> client_id:string -> t -> bool

  val put : Larch_net.Wire.writer -> t -> unit
  val read : Larch_net.Wire.reader -> t
  val encode : t -> string
  val decode : string -> (t, string) result
end

(** {1 Proof codec} *)

val put_proof : Larch_net.Wire.writer -> string list -> unit

val read_proof : Larch_net.Wire.reader -> string list
(** Bounded against absurd lengths.
    @raise Larch_net.Wire.Malformed on a hostile count *)

val encode_proof : string list -> string
val decode_proof : string -> (string list, string) result
