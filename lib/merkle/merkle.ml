(* RFC 6962-style append-only Merkle tree over log records.

   The log service keeps one tree per client alongside the record hash
   chain; the tree buys O(log n) audits.  Leaves are the canonical record
   encodings ({!Record.encode}), hashed with the usual CT domain
   separation: leaf = H(0x00 ‖ data), node = H(0x01 ‖ left ‖ right), so a
   leaf hash can never collide with an interior node.

   The tree caches every *complete* subtree hash (level l, index i covers
   leaves [i·2^l, (i+1)·2^l)): an append fills in the subtrees it
   completes — amortized O(1) hashing, O(log n) worst case — and
   root/proof generation walks cached nodes, recursing only along the
   ragged right edge, so inclusion and consistency proofs cost
   O(log² n) hash lookups with O(log n) fresh hashing.

   Verification ({!verify_inclusion}, {!verify_consistency}) is pure —
   the client side never materializes a tree — and follows the RFC 9162
   algorithms bit for bit.

   Signed tree heads bind (client id, size, root, time) under the log's
   P-256 STH key with RFC 6979 deterministic ECDSA, so seeded worlds stay
   byte-reproducible. *)

module Sha256 = Larch_hash.Sha256
module Wire = Larch_net.Wire
module Bytesx = Larch_util.Bytesx

let hash_len = 32

let leaf_hash (data : string) : string = Sha256.digest ("\x00" ^ data)
let node_hash (l : string) (r : string) : string = Sha256.digest_list [ "\x01"; l; r ]
let empty_root : string = Sha256.digest ""

let is_pow2 (n : int) : bool = n > 0 && n land (n - 1) = 0

(* Largest power of two strictly less than [n]; requires n >= 2. *)
let split_point (n : int) : int =
  let k = ref 1 in
  while !k * 2 < n do
    k := !k * 2
  done;
  !k

module Tree = struct
  type t = {
    mutable leaves : string array; (* leaf hashes, capacity >= n *)
    mutable n : int;
    nodes : (int * int, string) Hashtbl.t; (* (level, index) -> complete subtree hash *)
  }

  let create () : t = { leaves = Array.make 16 ""; n = 0; nodes = Hashtbl.create 64 }
  let size (t : t) : int = t.n

  (* Hash of the complete subtree at (level, index); level 0 is the leaf
     array, higher levels are always cached by [append]. *)
  let node (t : t) (level : int) (idx : int) : string =
    if level = 0 then t.leaves.(idx) else Hashtbl.find t.nodes (level, idx)

  let append (t : t) (leaf : string) : unit =
    if t.n = Array.length t.leaves then begin
      let grown = Array.make (2 * Array.length t.leaves) "" in
      Array.blit t.leaves 0 grown 0 t.n;
      t.leaves <- grown
    end;
    t.leaves.(t.n) <- leaf_hash leaf;
    t.n <- t.n + 1;
    (* fill in every subtree this leaf completes *)
    let l = ref 1 in
    while t.n mod (1 lsl !l) = 0 do
      let idx = (t.n lsr !l) - 1 in
      Hashtbl.replace t.nodes (!l, idx)
        (node_hash (node t (!l - 1) (2 * idx)) (node t (!l - 1) ((2 * idx) + 1)));
      incr l
    done

  let of_leaves (leaves : string list) : t =
    let t = create () in
    List.iter (append t) leaves;
    t

  (* RFC 6962 MTH over the leaf range [lo, hi); complete aligned subtrees
     come straight out of the cache. *)
  let rec hash_range (t : t) (lo : int) (hi : int) : string =
    let size = hi - lo in
    if size = 1 then t.leaves.(lo)
    else if is_pow2 size && lo land (size - 1) = 0 then
      let level = ref 0 and s = ref size in
      begin
        while !s > 1 do
          incr level;
          s := !s lsr 1
        done;
        node t !level (lo lsr !level)
      end
    else
      let k = split_point size in
      node_hash (hash_range t lo (lo + k)) (hash_range t (lo + k) hi)

  let root_at (t : t) (m : int) : string =
    if m < 0 || m > t.n then invalid_arg "Merkle.Tree.root_at"
    else if m = 0 then empty_root
    else hash_range t 0 m

  let root (t : t) : string = root_at t t.n

  (* RFC 6962 PATH(m, D[lo:hi]). *)
  let rec path (t : t) (lo : int) (hi : int) (m : int) : string list =
    if hi - lo <= 1 then []
    else
      let k = split_point (hi - lo) in
      if m < lo + k then path t lo (lo + k) m @ [ hash_range t (lo + k) hi ]
      else path t (lo + k) hi m @ [ hash_range t lo (lo + k) ]

  let inclusion_at (t : t) ~(index : int) ~(size : int) : string list =
    if size < 1 || size > t.n || index < 0 || index >= size then
      invalid_arg "Merkle.Tree.inclusion_at";
    path t 0 size index

  let inclusion (t : t) ~(index : int) : string list = inclusion_at t ~index ~size:t.n

  (* RFC 6962 SUBPROOF(m, D[lo:hi], b). *)
  let rec subproof (t : t) (m : int) (lo : int) (hi : int) (b : bool) : string list =
    let size = hi - lo in
    if m = size then if b then [] else [ hash_range t lo hi ]
    else
      let k = split_point size in
      if m <= k then subproof t m lo (lo + k) b @ [ hash_range t (lo + k) hi ]
      else subproof t (m - k) (lo + k) hi false @ [ hash_range t lo (lo + k) ]

  let consistency (t : t) ~(old_size : int) ~(new_size : int) : string list =
    if old_size < 0 || old_size > new_size || new_size > t.n then
      invalid_arg "Merkle.Tree.consistency";
    if old_size = 0 || old_size = new_size then []
    else subproof t old_size 0 new_size true
end

(* --- pure verification (RFC 9162 §2.1.3.2 / §2.1.4.2) --- *)

let well_formed (proof : string list) : bool =
  List.for_all (fun h -> String.length h = hash_len) proof

let verify_inclusion ~(root : string) ~(size : int) ~(index : int) ~(leaf : string)
    ~(proof : string list) : bool =
  if index < 0 || index >= size || not (well_formed proof) then false
  else begin
    let r = ref (leaf_hash leaf) in
    let fn = ref index and sn = ref (size - 1) in
    let ok = ref true in
    List.iter
      (fun p ->
        if !ok then
          if !sn = 0 then ok := false
          else begin
            if !fn land 1 = 1 || !fn = !sn then begin
              r := node_hash p !r;
              if !fn land 1 = 0 then
                while not (!fn = 0 || !fn land 1 = 1) do
                  fn := !fn lsr 1;
                  sn := !sn lsr 1
                done
            end
            else r := node_hash !r p;
            fn := !fn lsr 1;
            sn := !sn lsr 1
          end)
      proof;
    !ok && !sn = 0 && Bytesx.ct_equal !r root
  end

let verify_consistency ~(old_root : string) ~(old_size : int) ~(new_root : string)
    ~(new_size : int) ~(proof : string list) : bool =
  if old_size < 0 || new_size < old_size || not (well_formed proof) then false
  else if old_size = 0 then proof = [] (* the empty tree is a prefix of anything *)
  else if old_size = new_size then proof = [] && Bytesx.ct_equal old_root new_root
  else
    (* 0 < old_size < new_size: when the old tree is a complete subtree its
       root is the implicit first path element *)
    match (if is_pow2 old_size then old_root :: proof else proof) with
    | [] -> false
    | first :: rest ->
        let fn = ref (old_size - 1) and sn = ref (new_size - 1) in
        while !fn land 1 = 1 do
          fn := !fn lsr 1;
          sn := !sn lsr 1
        done;
        let fr = ref first and sr = ref first in
        let ok = ref true in
        List.iter
          (fun p ->
            if !ok then
              if !sn = 0 then ok := false
              else begin
                if !fn land 1 = 1 || !fn = !sn then begin
                  fr := node_hash p !fr;
                  sr := node_hash p !sr;
                  if !fn land 1 = 0 then
                    while not (!fn = 0 || !fn land 1 = 1) do
                      fn := !fn lsr 1;
                      sn := !sn lsr 1
                    done
                end
                else sr := node_hash !sr p;
                fn := !fn lsr 1;
                sn := !sn lsr 1
              end)
          rest;
        !ok && !sn = 0 && Bytesx.ct_equal !fr old_root && Bytesx.ct_equal !sr new_root

(* --- signed tree heads --- *)

module Sth = struct
  type t = { size : int; root : string; time : float; signature : string }

  (* Domain-separated digest binding the head to one client's tree: a head
     signed for one client can never vouch for another's history. *)
  let digest ~(client_id : string) ~(size : int) ~(root : string) ~(time : float) : string =
    Sha256.digest_list
      [
        "larch-sth";
        client_id;
        Bytesx.be64 (Int64.of_int size);
        root;
        Bytesx.be64 (Int64.bits_of_float time);
      ]

  let sign ~(sk : Larch_ec.P256.Scalar.t) ~(client_id : string) ~(size : int) ~(root : string)
      ~(time : float) : t =
    let sg = Larch_ec.Ecdsa.sign_digest ~sk (digest ~client_id ~size ~root ~time) in
    { size; root; time; signature = Larch_ec.Ecdsa.encode sg }

  let verify ~(pk : Larch_ec.Point.t) ~(client_id : string) (s : t) : bool =
    s.size >= 0
    && String.length s.root = hash_len
    &&
    match Larch_ec.Ecdsa.decode s.signature with
    | Some sg ->
        Larch_ec.Ecdsa.verify_digest ~pk
          (digest ~client_id ~size:s.size ~root:s.root ~time:s.time)
          sg
    | None -> false

  let put (w : Wire.writer) (s : t) : unit =
    Wire.u64 w (Int64.of_int s.size);
    Wire.fixed w s.root;
    Wire.u64 w (Int64.bits_of_float s.time);
    Wire.fixed w s.signature

  let read (r : Wire.reader) : t =
    let size = Int64.to_int (Wire.read_u64 r) in
    if size < 0 then raise (Wire.Malformed "bad sth size");
    let root = Wire.read_fixed r hash_len in
    let time = Int64.float_of_bits (Wire.read_u64 r) in
    let signature = Wire.read_fixed r 64 in
    { size; root; time; signature }

  let encode (s : t) : string = Wire.encode (fun w -> put w s)
  let decode (s : string) : (t, string) result = Wire.decode s read
end

(* --- proof codec --- *)

(* 256 path elements would describe a tree of 2^128 leaves; anything
   longer is garbage, not a proof. *)
let max_proof_len = 256

let put_proof (w : Wire.writer) (proof : string list) : unit =
  Wire.u32 w (List.length proof);
  List.iter (fun h -> Wire.fixed w h) proof

let read_proof (r : Wire.reader) : string list =
  let n = Wire.read_u32 r in
  if n < 0 || n > max_proof_len then raise (Wire.Malformed "bad proof length");
  List.init n (fun _ -> Wire.read_fixed r hash_len)

let encode_proof (p : string list) : string = Wire.encode (fun w -> put_proof w p)
let decode_proof (s : string) : (string list, string) result = Wire.decode s read_proof
