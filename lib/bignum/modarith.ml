(* Modular arithmetic with Barrett reduction.

   A [ctx] precomputes mu = floor(b^(2k) / m) for modulus m of k limbs
   (b = 2^26).  [reduce] then handles any x < b^(2k) — in particular any
   product of two reduced values — with two multiplications and at most two
   conditional subtractions.  Inversion uses Fermat's little theorem, which
   is valid because every modulus in larch (the P-256 field prime and group
   order) is prime. *)

type ctx = {
  modulus : Nat.t;
  k : int; (* limb count of the modulus *)
  mu : Nat.t; (* floor(b^(2k) / m) *)
}

let make (modulus : Nat.t) : ctx =
  if Nat.is_zero modulus then invalid_arg "Modarith.make: zero modulus";
  let k = Array.length modulus in
  let b2k = Nat.shift_left Nat.one (2 * k * Nat.base_bits) in
  let mu, _ = Nat.divmod b2k modulus in
  { modulus; k; mu }

let reduce (ctx : ctx) (x : Nat.t) : Nat.t =
  if Nat.compare x ctx.modulus < 0 then x
  else if Nat.bit_length x > 2 * ctx.k * Nat.base_bits then
    (* Outside Barrett's precondition; fall back to long division. *)
    snd (Nat.divmod x ctx.modulus)
  else begin
    let q1 = Nat.shift_right x ((ctx.k - 1) * Nat.base_bits) in
    let q2 = Nat.mul q1 ctx.mu in
    let q3 = Nat.shift_right q2 ((ctx.k + 1) * Nat.base_bits) in
    let r = Nat.sub x (Nat.mul q3 ctx.modulus) in
    let r = if Nat.compare r ctx.modulus >= 0 then Nat.sub r ctx.modulus else r in
    let r = if Nat.compare r ctx.modulus >= 0 then Nat.sub r ctx.modulus else r in
    (* Barrett's estimate is off by at most 2, but guard exhaustively. *)
    if Nat.compare r ctx.modulus >= 0 then snd (Nat.divmod r ctx.modulus) else r
  end

let add ctx a b =
  let s = Nat.add a b in
  if Nat.compare s ctx.modulus >= 0 then Nat.sub s ctx.modulus else s

let sub ctx a b =
  if Nat.compare a b >= 0 then Nat.sub a b else Nat.sub (Nat.add a ctx.modulus) b

let neg ctx a = if Nat.is_zero a then Nat.zero else Nat.sub ctx.modulus a
let mul ctx a b = reduce ctx (Nat.mul a b)
let sqr ctx a = mul ctx a a

let pow (ctx : ctx) (base : Nat.t) (e : Nat.t) : Nat.t =
  let nbits = Nat.bit_length e in
  let acc = ref Nat.one in
  for i = nbits - 1 downto 0 do
    acc := sqr ctx !acc;
    if Nat.test_bit e i then acc := mul ctx !acc base
  done;
  !acc

(* Inverse modulo an odd prime via the binary extended Euclidean algorithm
   (HAC 14.61).  ~2×lg m cheap shift/sub steps instead of the ~1.5×lg m
   Barrett multiplications Fermat costs — an order of magnitude faster, and
   it is what keeps ECDSA's per-signature Scalar.inv off the profile.  Even
   moduli (never used by larch, but reachable through the generic functor)
   fall back to Fermat. *)
let inv_binary (ctx : ctx) (a : Nat.t) : Nat.t =
  let m = ctx.modulus in
  let half x = Nat.shift_right x 1 in
  let half_mod x = if Nat.is_even x then half x else half (Nat.add x m) in
  let u = ref a and v = ref m in
  let x1 = ref Nat.one and x2 = ref Nat.zero in
  while (not (Nat.is_one !u)) && not (Nat.is_one !v) do
    while Nat.is_even !u do
      u := half !u;
      x1 := half_mod !x1
    done;
    while Nat.is_even !v do
      v := half !v;
      x2 := half_mod !x2
    done;
    if Nat.compare !u !v >= 0 then begin
      u := Nat.sub !u !v;
      x1 := sub ctx !x1 !x2
    end
    else begin
      v := Nat.sub !v !u;
      x2 := sub ctx !x2 !x1
    end
  done;
  if Nat.is_one !u then !x1 else !x2

let inv (ctx : ctx) (a : Nat.t) : Nat.t =
  let a = reduce ctx a in
  if Nat.is_zero a then invalid_arg "Modarith.inv: zero";
  if Nat.is_even ctx.modulus then pow ctx a (Nat.sub ctx.modulus (Nat.of_int 2))
  else inv_binary ctx a

(* Square root modulo a prime p = 3 (mod 4): a^((p+1)/4).  Returns [None]
   when [a] is not a quadratic residue. *)
let sqrt (ctx : ctx) (a : Nat.t) : Nat.t option =
  let e = Nat.shift_right (Nat.add ctx.modulus Nat.one) 2 in
  let r = pow ctx a e in
  if Nat.equal (sqr ctx r) (reduce ctx a) then Some r else None

(* Uniform sample in [0, m) by rejection from [rand_bytes]. *)
let random (ctx : ctx) ~(rand_bytes : int -> string) : Nat.t =
  let len = ((Nat.bit_length ctx.modulus + 7) / 8) + 8 in
  (* Oversample by 64 bits then reduce: statistically uniform and simpler
     than rejection; bias is < 2^-64. *)
  reduce ctx (Nat.of_bytes_be (rand_bytes len))

let random_nonzero ctx ~rand_bytes =
  let rec go n =
    if n > 100 then failwith "Modarith.random_nonzero: bad rng";
    let r = random ctx ~rand_bytes in
    if Nat.is_zero r then go (n + 1) else r
  in
  go 0

module type S = sig
  type t = Nat.t

  val modulus : Nat.t
  val ctx : ctx
  val zero : t
  val one : t
  val of_nat : Nat.t -> t
  val of_int : int -> t
  val of_bytes_be : string -> t
  val to_bytes_be : t -> string
  val equal : t -> t -> bool
  val add : t -> t -> t
  val sub : t -> t -> t
  val neg : t -> t
  val mul : t -> t -> t
  val sqr : t -> t
  val pow : t -> Nat.t -> t
  val inv : t -> t
  val sqrt : t -> t option
  val random : rand_bytes:(int -> string) -> t
  val random_nonzero : rand_bytes:(int -> string) -> t
  val byte_length : int
  val pp : Format.formatter -> t -> unit
end

module Make (M : sig
  val modulus : Nat.t
end) : S = struct
  type t = Nat.t

  let modulus = M.modulus
  let ctx = make modulus
  let zero = Nat.zero
  let one = Nat.one
  let of_nat x = reduce ctx x
  let of_int x = reduce ctx (Nat.of_int x)
  let of_bytes_be s = reduce ctx (Nat.of_bytes_be s)
  let byte_length = (Nat.bit_length modulus + 7) / 8
  let to_bytes_be x = Nat.to_bytes_be ~len:byte_length x
  let equal = Nat.equal
  let add = add ctx
  let sub = sub ctx
  let neg = neg ctx
  let mul = mul ctx
  let sqr = sqr ctx
  let pow = pow ctx
  let inv = inv ctx
  let sqrt = sqrt ctx
  let random ~rand_bytes = random ctx ~rand_bytes
  let random_nonzero ~rand_bytes = random_nonzero ctx ~rand_bytes
  let pp = Nat.pp
end
