(* The larch command-line driver.

   Runs complete, narrated protocol scenarios against an in-process log
   service — the fastest way to see each paper mechanism end to end:

     larch demo fido2        one FIDO2 authentication, with timings
     larch demo totp         split-secret TOTP with n decoy accounts
     larch demo password     password derivation over n relying parties
     larch demo multilog     2-of-3 logs with a failure
     larch demo compromise   stolen-device detection + revocation
     larch demo recovery     encrypted backup + recovery
     larch sizes             the byte-level constants of every protocol
     larch circuits          statement-circuit statistics
     larch trace <demo>      a demo under the observability layer: span
                             tree, metrics table, and the log-service
                             event stream (optionally Chrome JSON) *)

open Larch_core
module Obs = Larch_obs

let rand = Larch_hash.Drbg.system ()

let world () =
  let log = Log_service.create ~rand_bytes:rand () in
  let client = Client.create ~client_id:"cli-user" ~account_password:"cli password" ~log ~rand_bytes:rand () in
  (log, client)

let timed label f =
  let r, dt = Obs.Trace.timed label f in
  Printf.printf "  %-38s %7.1f ms\n%!" label (dt *. 1000.);
  r

let demo_fido2 () =
  print_endline "FIDO2 split-secret authentication (paper §3)";
  let _log, client = world () in
  timed "enroll (16 presignatures)" (fun () -> Client.enroll ~presignature_count:16 client);
  let rp = Relying_party.create ~name:"github.com" ~rand_bytes:rand () in
  let pk = timed "register at github.com" (fun () -> Client.register_fido2 client ~rp_name:"github.com") in
  Relying_party.fido2_register rp ~username:"cli-user" ~pk;
  let challenge = Relying_party.fido2_challenge rp ~username:"cli-user" in
  let assertion =
    timed "authenticate (ZK proof + 2P-ECDSA)" (fun () ->
        Client.authenticate_fido2 client ~rp_name:"github.com" ~challenge)
  in
  Printf.printf "  relying party verdict: %s\n"
    (if Relying_party.fido2_login rp ~username:"cli-user" assertion then "accepted" else "REJECTED");
  let snap = Client.channel_snapshot client in
  Printf.printf "  wire: %.2f MiB up / %d B down, %d round trips\n"
    (float_of_int snap.Larch_net.Channel.up /. 1048576.)
    snap.Larch_net.Channel.down snap.Larch_net.Channel.rts;
  0

let demo_totp n =
  Printf.printf "TOTP split-secret authentication with %d registrations (paper §4)\n" n;
  let _log, client = world () in
  Client.enroll ~presignature_count:1 client;
  let rp = Relying_party.create ~name:"target.example" ~rand_bytes:rand () in
  let key = Relying_party.totp_register rp ~username:"cli-user" in
  Client.register_totp client ~rp_name:"target.example" ~totp_key:key;
  for i = 2 to n do
    Client.register_totp client
      ~rp_name:(Printf.sprintf "decoy%02d.example" i)
      ~totp_key:(rand 20)
  done;
  let time = Unix.gettimeofday () in
  let outcome =
    timed "garbled-circuit 2PC" (fun () ->
        Client.authenticate_totp_detailed client ~rp_name:"target.example" ~time)
  in
  Printf.printf "  code %s; offline %.0f ms / online %.0f ms\n"
    (Larch_auth.Totp.code_to_string outcome.Totp_protocol.code)
    (outcome.Totp_protocol.timings.Larch_mpc.Yao.offline_seconds *. 1000.)
    (outcome.Totp_protocol.timings.Larch_mpc.Yao.online_seconds *. 1000.);
  Printf.printf "  relying party verdict: %s\n"
    (if Relying_party.totp_login rp ~username:"cli-user" ~time outcome.Totp_protocol.code then
       "accepted"
     else "REJECTED");
  0

let demo_password n =
  Printf.printf "password derivation over %d relying parties (paper §5)\n" n;
  let _log, client = world () in
  Client.enroll ~presignature_count:1 client;
  let rp = Relying_party.create ~name:"target.example" ~rand_bytes:rand () in
  let pw = Client.register_password client ~rp_name:"target.example" in
  Relying_party.password_set rp ~username:"cli-user" ~password:pw;
  for i = 2 to n do
    ignore (Client.register_password client ~rp_name:(Printf.sprintf "decoy%03d.example" i))
  done;
  let pw' =
    timed "authenticate (GK15 proofs + blinded DH)" (fun () ->
        Client.authenticate_password client ~rp_name:"target.example")
  in
  Printf.printf "  relying party verdict: %s\n"
    (if Relying_party.password_login rp ~username:"cli-user" ~password:pw' then "accepted"
     else "REJECTED");
  let snap = Client.channel_snapshot client in
  Printf.printf "  wire this session: %.2f KiB\n"
    (float_of_int (snap.Larch_net.Channel.up + snap.Larch_net.Channel.down) /. 1024.);
  0

let demo_multilog () =
  print_endline "2-of-3 multi-log deployment (paper §6)";
  (* each log keeps its durable state in its own store directory on a
     shared faultable disk (log0/, log1/, log2/) *)
  let disk = Larch_store.Disk.create ~seed:"multilog-demo" () in
  let ml = Multilog.create ~disk ~n:3 ~threshold:2 ~rand_bytes:rand () in
  let c = Multilog.enroll ml ~client_id:"cli-user" ~account_password:"pw" in
  let pw = Multilog.register ml c ~rp_name:"rp.example" in
  ignore pw;
  Multilog.set_online ml 1 false;
  (match Multilog.authenticate ml c ~rp_name:"rp.example" ~now:(Unix.gettimeofday ()) with
  | _ -> print_endline "  authenticated with log #1 offline"
  | exception Multilog.Unavailable m -> Printf.printf "  unavailable: %s\n" m);
  (* kill log #2 outright: it recovers from its own WAL, peers untouched *)
  Log_service.restart ml.Multilog.logs.(2);
  print_endline "  log #2 killed and recovered from its write-ahead log";
  let res = Multilog.audit ml c in
  Printf.printf "  audit: %d entries, coverage %s\n" (List.length res.Multilog.entries)
    (if res.Multilog.complete then "complete" else "incomplete");
  0

let demo_compromise () =
  print_endline "stolen-device detection and revocation (paper §1, §2.4)";
  let _log, client = world () in
  Client.enroll ~presignature_count:6 client;
  let rp = Relying_party.create ~name:"bank.example" ~rand_bytes:rand () in
  let pk = Client.register_fido2 client ~rp_name:"bank.example" in
  Relying_party.fido2_register rp ~username:"cli-user" ~pk;
  let login () =
    let chal = Relying_party.fido2_challenge rp ~username:"cli-user" in
    ignore (Relying_party.fido2_login rp ~username:"cli-user"
              (Client.authenticate_fido2 client ~rp_name:"bank.example" ~challenge:chal))
  in
  login ();
  print_endline "  user logs in once";
  login ();
  login ();
  print_endline "  attacker (with full device state) logs in twice";
  let anomalies = Client.detect_anomalies client ~expected:[ (Types.Fido2, "bank.example") ] in
  Printf.printf "  audit flags %d unexpected authentications\n" (List.length anomalies);
  Client.revoke_all client;
  print_endline "  shares revoked at the log; stolen state is inert";
  0

let demo_recovery () =
  print_endline "encrypted backup and account recovery (paper §9)";
  let log, client = world () in
  Client.enroll ~presignature_count:4 client;
  ignore (Client.register_password client ~rp_name:"mail.example");
  let bytes = Backup.store client in
  Printf.printf "  sealed state stored at log: %d bytes\n" bytes;
  (match Backup.recover ~log ~client_id:"cli-user" ~account_password:"cli password" ~rand_bytes:rand with
  | Ok restored ->
      ignore (Client.authenticate_password restored ~rp_name:"mail.example");
      print_endline "  recovered on a fresh device; authentication works"
  | Error e -> Printf.printf "  recovery failed: %s\n" e);
  0

(* Deterministic faulty-transport demo: run the same seeded world twice —
   same DRBG for all randomness, same seeded fault injector, simulated
   clock — and show that the two transcripts (operation outcomes, event
   stream, channel meters, audit history) are byte-for-byte identical. *)

let hex (s : string) : string =
  String.concat "" (List.map (Printf.sprintf "%02x") (List.map Char.code (List.init (String.length s) (String.get s))))

let faults_run ~(seed : string) ~(auths : int) : string * string =
  Larch_util.Clock.set 1_700_000_000.;
  Obs.Runtime.set_time_source (Some Larch_util.Clock.now);
  Obs.Runtime.set_events true;
  Obs.Events.clear ();
  let drbg = Larch_hash.Drbg.create ~entropy:("larch-faults-" ^ seed) in
  let rand n = Larch_hash.Drbg.generate drbg n in
  (* storage faults ride along with transport faults: the log's state
     lives in a seeded faultable store, so every injected peer restart is
     a genuine kill (un-fsynced bytes drawn away per the disk profile)
     followed by snapshot + WAL recovery *)
  let disk = Larch_store.Disk.create ~seed () in
  let store = Larch_store.Store.open_ ~disk ~dir:"log" () in
  let log = Log_service.create ~checkpoint_every:32 ~store ~rand_bytes:rand () in
  let client =
    Client.create ~client_id:"fault-user" ~account_password:"pw" ~log ~rand_bytes:rand ()
  in
  let buf = Buffer.create 512 in
  let record outcome = Buffer.add_string buf (outcome ^ "\n") in
  (* clean enrollment and registrations, then inject faults *)
  Client.enroll ~presignature_count:(4 * auths) client;
  let rp = Relying_party.create ~name:"rp.example" ~rand_bytes:rand () in
  let pk = Client.register_fido2 client ~rp_name:"rp.example" in
  Relying_party.fido2_register rp ~username:"fault-user" ~pk;
  let totp_key = Relying_party.totp_register rp ~username:"fault-user" in
  Client.register_totp client ~rp_name:"rp.example" ~totp_key;
  let site_pw = Client.register_password client ~rp_name:"rp.example" in
  Relying_party.password_set rp ~username:"fault-user" ~password:site_pw;
  Client.Transport.set_injector client.Client.transport
    (Some (Larch_net.Fault.seeded ~seed Larch_net.Fault.stormy));
  let ok = ref 0 and failed = ref 0 in
  let attempt label f =
    Larch_util.Clock.advance 1.0;
    match f () with
    | () ->
        incr ok;
        record (label ^ " ok")
    | exception Client.Transport.Error e ->
        incr failed;
        record
          (Printf.sprintf "%s error %s attempts=%d" label
             (Client.Transport.failure_to_string e.Client.Transport.last)
             e.Client.Transport.attempts)
    | exception Types.Protocol_error m ->
        incr failed;
        record (label ^ " protocol-error " ^ m)
    | exception Client.Log_misbehaved m ->
        incr failed;
        record (label ^ " log-misbehaved " ^ m)
  in
  for i = 1 to auths do
    attempt
      (Printf.sprintf "fido2[%d]" i)
      (fun () ->
        let challenge = Relying_party.fido2_challenge rp ~username:"fault-user" in
        let assertion = Client.authenticate_fido2 client ~rp_name:"rp.example" ~challenge in
        if not (Relying_party.fido2_login rp ~username:"fault-user" assertion) then
          failwith "relying party rejected");
    attempt
      (Printf.sprintf "totp[%d]" i)
      (fun () ->
        ignore (Client.authenticate_totp client ~rp_name:"rp.example" ~time:(Larch_util.Clock.now ())));
    attempt
      (Printf.sprintf "password[%d]" i)
      (fun () ->
        let pw = Client.authenticate_password client ~rp_name:"rp.example" in
        if not (Relying_party.password_login rp ~username:"fault-user" ~password:pw) then
          failwith "relying party rejected")
  done;
  (* calm the link again and audit what actually got recorded *)
  Client.Transport.set_injector client.Client.transport None;
  Client.resync client;
  let resp = Log_service.audit_with_head log ~client_id:"fault-user" ~token:"pw" in
  Buffer.add_string buf
    (Printf.sprintf "audit chain len=%d head=%s\n" resp.Log_service.chain_len
       (hex resp.Log_service.chain_head));
  let snap = Client.channel_snapshot client in
  Buffer.add_string buf
    (Printf.sprintf "wire up=%d down=%d msgs=%d rts=%d\n" snap.Larch_net.Channel.up
       snap.Larch_net.Channel.down snap.Larch_net.Channel.msgs snap.Larch_net.Channel.rts);
  List.iter (fun e -> Buffer.add_string buf (Obs.Events.to_string e ^ "\n")) (Obs.Events.recent ());
  (* storage transcript: deterministic disk op counts (never latencies)
     plus the post-storm fsck verdict *)
  let ds = Larch_store.Disk.stats disk in
  Buffer.add_string buf
    (Printf.sprintf "disk appends=%d fsyncs=%d bytes=%d crashes=%d torn=%d rotted=%d\n"
       ds.Larch_store.Disk.appends ds.Larch_store.Disk.fsyncs ds.Larch_store.Disk.bytes_written
       ds.Larch_store.Disk.crashes ds.Larch_store.Disk.torn ds.Larch_store.Disk.rotted);
  let fr = Option.get (Log_service.fsck log) in
  Buffer.add_string buf
    (Printf.sprintf "fsck %s: gen=%d wal_ops=%d clients=%d%s\n"
       (if Log_persist.fsck_clean fr then "clean" else "DIRTY")
       (Larch_store.Store.generation (Log_persist.store (Option.get (Log_service.persist log))))
       fr.Log_persist.wal_ops fr.Log_persist.clients
       (match fr.Log_persist.issues with [] -> "" | l -> " " ^ String.concat "; " l));
  let st = Client.Transport.stats client.Client.transport in
  let summary =
    Printf.sprintf
      "%d ok / %d failed (typed); transport: %d attempts, %d retries, %d timeouts, %d faults, %d replays; store: %d kills, fsck %s; %d events"
      !ok !failed st.Client.Transport.attempts st.Client.Transport.retries
      st.Client.Transport.timeouts st.Client.Transport.faults st.Client.Transport.replays
      ds.Larch_store.Disk.crashes
      (if Log_persist.fsck_clean fr then "clean" else "DIRTY")
      (List.length (Obs.Events.recent ()))
  in
  Obs.Runtime.set_events false;
  Obs.Runtime.set_time_source None;
  Larch_util.Clock.use_real_time ();
  (hex (Larch_hash.Sha256.digest (Buffer.contents buf)), summary)

let faults seed auths =
  Printf.printf "seeded fault injection (seed=%s, stormy profile, %d auths per method)\n" seed auths;
  let d1, s1 = faults_run ~seed ~auths in
  Printf.printf "  run 1: %s\n         transcript digest %s\n" s1 (String.sub d1 0 16);
  let d2, s2 = faults_run ~seed ~auths in
  Printf.printf "  run 2: %s\n         transcript digest %s\n" s2 (String.sub d2 0 16);
  if d1 = d2 then begin
    print_endline "  deterministic: run 2 replayed run 1 byte for byte";
    Printf.printf "  reproduce with: larch faults --seed %s -n %d\n" seed auths;
    0
  end
  else begin
    print_endline "  NOT deterministic: transcripts differ";
    1
  end

(* --- swarm: concurrent fiber sessions over the faulty link ------------- *)

module Runtime = Larch_runtime.Runtime

(* One seeded world: [sessions] clients, each a fiber driving a full
   enroll → register → authenticate → audit session for its protocol
   (10% FIDO2, 20% TOTP, 70% password) over the 20 ms RTT link with a
   per-client seeded fault injector, all against one store-backed log
   behind the Log_async admission loop.  The transcript records every
   session's outcome in completion order — a pure function of the
   scheduler seed — plus aggregate transport/disk/admission/fsck
   state; the caller digests it. *)
let swarm_run ~(seed : string) ~(sessions : int) ~(faulty : bool) : string * string =
  Larch_util.Clock.set 1_700_000_000.;
  Obs.Runtime.set_time_source (Some Larch_util.Clock.now);
  let drbg = Larch_hash.Drbg.create ~entropy:("larch-swarm-" ^ seed) in
  let rand n = Larch_hash.Drbg.generate drbg n in
  let disk = Larch_store.Disk.create ~seed () in
  let store = Larch_store.Store.open_ ~disk ~dir:"log" () in
  let log =
    Log_service.create ~checkpoint_every:64 ~objection_window:0.05 ~store ~rand_bytes:rand ()
  in
  let la = Log_async.create log in
  let transcript = Buffer.create 4096 in
  let ok = ref 0 and failed = ref 0 in
  let attempts = ref 0 and retries = ref 0 and tfaults = ref 0 and replays = ref 0 in
  (* storms, but rare crashes: a shared-log restart hits every in-flight
     session, so the stormy default would drown the swarm in collateral
     aborts instead of exercising interleaving *)
  let profile = { Larch_net.Fault.stormy with Larch_net.Fault.p_crash = 0.004 } in
  let t0 = Larch_util.Clock.now () in
  Runtime.run ~seed:("swarm-sched-" ^ seed) (fun () ->
      Log_async.start la;
      let session i () =
        let cid = Printf.sprintf "swarm-%03d" i in
        let proto, proto_name =
          match i mod 10 with
          | 0 -> (`Fido2, "fido2")
          | 1 | 2 -> (`Totp, "totp")
          | _ -> (`Password, "password")
        in
        let client =
          Client.create ~net:Larch_net.Netsim.paper_default ~client_id:cid
            ~account_password:("pw-" ^ cid) ~log ~rand_bytes:rand ()
        in
        Log_async.attach la ~client_id:cid client.Client.transport;
        let outcome =
          match
            (* clean enrollment; faults start with authentication *)
            Client.enroll ~presignature_count:(if proto = `Fido2 then 3 else 1) client;
            let rp = Relying_party.create ~name:("rp-" ^ cid) ~rand_bytes:rand () in
            if faulty then
              Client.Transport.set_injector client.Client.transport
                (Some (Larch_net.Fault.seeded ~seed:(seed ^ "/" ^ cid) profile));
            (match proto with
            | `Fido2 ->
                let pk = Client.register_fido2 client ~rp_name:("rp-" ^ cid) in
                Relying_party.fido2_register rp ~username:cid ~pk;
                let challenge = Relying_party.fido2_challenge rp ~username:cid in
                let assertion =
                  Client.authenticate_fido2 client ~rp_name:("rp-" ^ cid) ~challenge
                in
                if not (Relying_party.fido2_login rp ~username:cid assertion) then
                  failwith "relying party rejected";
                (* staged top-up: the admission loop's idle pass activates
                   it once the objection window lapses *)
                Client.top_up_presignatures client ~count:2
            | `Totp ->
                let totp_key = Relying_party.totp_register rp ~username:cid in
                Client.register_totp client ~rp_name:("rp-" ^ cid) ~totp_key;
                ignore
                  (Client.authenticate_totp client ~rp_name:("rp-" ^ cid)
                     ~time:(Larch_util.Clock.now ()))
            | `Password ->
                let site_pw = Client.register_password client ~rp_name:("rp-" ^ cid) in
                Relying_party.password_set rp ~username:cid ~password:site_pw;
                let pw = Client.authenticate_password client ~rp_name:("rp-" ^ cid) in
                if not (Relying_party.password_login rp ~username:cid ~password:pw) then
                  failwith "relying party rejected")
          with
          | () -> incr ok; "ok"
          | exception Client.Transport.Error e ->
              incr failed;
              Printf.sprintf "transport-error %s attempts=%d"
                (Client.Transport.failure_to_string e.Client.Transport.last)
                e.Client.Transport.attempts
          | exception Types.Protocol_error m ->
              incr failed;
              "protocol-error " ^ m
          | exception Client.Log_misbehaved m ->
              incr failed;
              "log-misbehaved " ^ m
          | exception Failure m ->
              incr failed;
              "failed " ^ m
        in
        (* calm the link again; a verified audit closes the session *)
        Client.Transport.set_injector client.Client.transport None;
        let audit =
          match Client.resync client; Client.audit_verified client with
          | Ok entries -> Printf.sprintf "audit ok (%d records)" (List.length entries)
          | Error m -> "audit FAILED " ^ m
          | exception _ -> "audit error"
        in
        let st = Client.Transport.stats client.Client.transport in
        attempts := !attempts + st.Client.Transport.attempts;
        retries := !retries + st.Client.Transport.retries;
        tfaults := !tfaults + st.Client.Transport.faults;
        replays := !replays + st.Client.Transport.replays;
        Buffer.add_string transcript
          (Printf.sprintf "%s %-8s %s; %s; retries=%d\n" cid proto_name outcome audit
             st.Client.Transport.retries)
      in
      let fibers =
        List.init sessions (fun i ->
            Runtime.spawn ~name:(Printf.sprintf "session-%03d" i) (session i))
      in
      List.iter
        (fun p ->
          match Runtime.await p with
          | () -> ()
          | exception _ -> incr failed)
        fibers;
      Log_async.stop la);
  let elapsed = Larch_util.Clock.now () -. t0 in
  let ds = Larch_store.Disk.stats disk in
  let fr = Option.get (Log_service.fsck log) in
  Buffer.add_string transcript
    (Printf.sprintf "disk appends=%d fsyncs=%d bytes=%d crashes=%d\n"
       ds.Larch_store.Disk.appends ds.Larch_store.Disk.fsyncs
       ds.Larch_store.Disk.bytes_written ds.Larch_store.Disk.crashes);
  Buffer.add_string transcript
    (Printf.sprintf "fsck %s: wal_ops=%d clients=%d%s\n"
       (if Log_persist.fsck_clean fr then "clean" else "DIRTY")
       fr.Log_persist.wal_ops fr.Log_persist.clients
       (match fr.Log_persist.issues with [] -> "" | l -> " " ^ String.concat "; " l));
  Buffer.add_string transcript
    (Printf.sprintf "admission batches=%d batched_reqs=%d virtual_elapsed=%.3fs\n"
       (Log_async.batches la) (Log_async.batched_requests la) elapsed);
  let summary =
    Printf.sprintf
      "%d ok / %d failed; transport: %d attempts, %d retries, %d faults, %d replays; \
       admission: %d batches (%d reqs batched); %d disk kills, fsck %s; %.1fs virtual"
      !ok !failed !attempts !retries !tfaults !replays (Log_async.batches la)
      (Log_async.batched_requests la) ds.Larch_store.Disk.crashes
      (if Log_persist.fsck_clean fr then "clean" else "DIRTY")
      elapsed
  in
  Obs.Runtime.set_time_source None;
  Larch_util.Clock.use_real_time ();
  (hex (Larch_hash.Sha256.digest (Buffer.contents transcript)), summary)

(* Fiber-runtime scenarios surface a wedged schedule as a typed
   [Runtime.Deadlock] carrying every live fiber's name and block reason;
   any CLI command driving the runtime reports that list and exits 2
   instead of dying on an unhandled exception. *)
let with_deadlock_report ~(cmd : string) (f : unit -> 'a) : 'a =
  try f ()
  with Runtime.Deadlock stuck ->
    Printf.eprintf "%s: deadlock; stuck fibers:\n" cmd;
    List.iter (fun s -> Printf.eprintf "  %s\n" s) stuck;
    exit 2

let swarm seed sessions clean =
  let faulty = not clean in
  Printf.printf "swarm: %d concurrent sessions (seed=%s, %s link, 20ms RTT)\n" sessions seed
    (if faulty then "faulty" else "clean");
  let swarm_run ~seed ~sessions ~faulty =
    with_deadlock_report ~cmd:"swarm" (fun () -> swarm_run ~seed ~sessions ~faulty)
  in
  let d1, s1 = swarm_run ~seed ~sessions ~faulty in
  Printf.printf "  run 1: %s\n         transcript digest %s\n" s1 (String.sub d1 0 16);
  let d2, s2 = swarm_run ~seed ~sessions ~faulty in
  Printf.printf "  run 2: %s\n         transcript digest %s\n" s2 (String.sub d2 0 16);
  if d1 = d2 then begin
    print_endline "  deterministic: run 2 replayed the interleaving byte for byte";
    Printf.printf "  reproduce with: larch swarm --seed %s -n %d\n" seed sessions;
    0
  end
  else begin
    print_endline "  NOT deterministic: transcripts differ";
    1
  end

(* --- overload: bounded admission, shedding, brownout ------------------- *)

(* Each offered-load multiple runs twice from the same seed and must
   digest identically; the storm numbers then feed the acceptance
   checks: typed sheds appear under overload, goodput at 4x holds >= 70%
   of 1x, the brownout recovers, every audit verifies, fsck is clean. *)
let overload_run seed fast =
  let mults = if fast then [ 1; 4 ] else [ 1; 2; 4 ] in
  Printf.printf "overload: seeded storms at %s offered load (seed=%s)\n"
    (String.concat "/" (List.map (fun m -> Printf.sprintf "%dx" m) mults))
    seed;
  let results =
    List.map
      (fun mult ->
        let w1 = with_deadlock_report ~cmd:"overload" (fun () -> Overload.run ~seed ~mult) in
        let w2 = with_deadlock_report ~cmd:"overload" (fun () -> Overload.run ~seed ~mult) in
        let same = w1.Overload.digest = w2.Overload.digest in
        Printf.printf "  %dx: %s\n" mult w1.Overload.summary;
        Printf.printf "      digest %s (run 2 %s)\n"
          (String.sub w1.Overload.digest 0 16)
          (if same then "identical" else "DIFFERS");
        (w1, same))
      mults
  in
  print_endline "  goodput vs offered load:";
  List.iter
    (fun (w, _) ->
      Printf.printf "    %dx  offered %4d  completed %4d  shed %4d  goodput %6.1f/s\n"
        w.Overload.mult w.Overload.offered w.Overload.completed
        w.Overload.admission.Log_async.shed_total w.Overload.goodput)
    results;
  let base = fst (List.hd results) in
  let storm = fst (List.nth results (List.length results - 1)) in
  let deterministic = List.for_all snd results in
  let invariants_ok =
    List.for_all
      (fun (w, _) ->
        w.Overload.fsck_clean && w.Overload.audits_failed = 0 && w.Overload.brownout_recovered)
      results
  in
  (* typed sheds = admission decisions observed by client transports as
     Overloaded attempts; whether a given client also exhausts all its
     retries (overloaded > 0) is a seed-dependent detail. *)
  let shed_ok =
    storm.Overload.admission.Log_async.shed_total > 0 && storm.Overload.shed_attempts > 0
  in
  let goodput_ok = storm.Overload.goodput >= 0.7 *. base.Overload.goodput in
  let check name ok = Printf.printf "  %s %s\n" (if ok then "ok  " else "FAIL") name in
  check "deterministic: same seed, same transcript" deterministic;
  check
    (Printf.sprintf "typed sheds under %dx overload (%d shed, %d typed attempts, %d gave up)"
       storm.Overload.mult storm.Overload.admission.Log_async.shed_total
       storm.Overload.shed_attempts storm.Overload.overloaded)
    shed_ok;
  check
    (Printf.sprintf "goodput holds: %.1f/s at %dx >= 70%% of %.1f/s at 1x"
       storm.Overload.goodput storm.Overload.mult base.Overload.goodput)
    goodput_ok;
  check "post-storm: brownout recovered, audits verified, fsck clean" invariants_ok;
  if deterministic && invariants_ok && shed_ok && goodput_ok then begin
    Printf.printf "  reproduce with: larch overload --seed %s\n" seed;
    0
  end
  else 1

(* --- storage: fsck and the crash-point recovery sweep ------------------ *)

module Disk = Larch_store.Disk
module Store = Larch_store.Store

(* A deterministic store-backed world: seeded DRBG, simulated clock, all
   three methods exercised, a backup stored and old records pruned — so
   the WAL crosses every op family fsck knows how to check. *)
let store_workload ~(seed : string) ~(auths : int) ~(checkpoint_every : int) :
    Log_service.t * Disk.t * string =
  Larch_util.Clock.set 1_700_000_000.;
  Obs.Runtime.set_time_source (Some Larch_util.Clock.now);
  let drbg = Larch_hash.Drbg.create ~entropy:("larch-store-" ^ seed) in
  let rand n = Larch_hash.Drbg.generate drbg n in
  let disk = Disk.create ~seed () in
  let dir = "log" in
  let store = Store.open_ ~disk ~dir () in
  let log = Log_service.create ~checkpoint_every ~store ~rand_bytes:rand () in
  let client =
    Client.create ~client_id:"store-user" ~account_password:"pw" ~log ~rand_bytes:rand ()
  in
  Client.enroll ~presignature_count:(2 * auths) client;
  let rp = Relying_party.create ~name:"rp.example" ~rand_bytes:rand () in
  let pk = Client.register_fido2 client ~rp_name:"rp.example" in
  Relying_party.fido2_register rp ~username:"store-user" ~pk;
  let totp_key = Relying_party.totp_register rp ~username:"store-user" in
  Client.register_totp client ~rp_name:"rp.example" ~totp_key;
  let site_pw = Client.register_password client ~rp_name:"rp.example" in
  Relying_party.password_set rp ~username:"store-user" ~password:site_pw;
  for _i = 1 to auths do
    Larch_util.Clock.advance 30.;
    let challenge = Relying_party.fido2_challenge rp ~username:"store-user" in
    ignore
      (Relying_party.fido2_login rp ~username:"store-user"
         (Client.authenticate_fido2 client ~rp_name:"rp.example" ~challenge));
    Larch_util.Clock.advance 30.;
    ignore (Client.authenticate_totp client ~rp_name:"rp.example" ~time:(Larch_util.Clock.now ()));
    Larch_util.Clock.advance 30.;
    ignore (Client.authenticate_password client ~rp_name:"rp.example")
  done;
  ignore (Backup.store client);
  ignore
    (Log_service.prune_records log ~client_id:"store-user" ~token:"pw"
       ~older_than:(Larch_util.Clock.now () -. 45.));
  Obs.Runtime.set_time_source None;
  Larch_util.Clock.use_real_time ();
  (log, disk, dir)

let state_digest (clients : Log_state.clients) : string =
  hex (Larch_hash.Sha256.digest (Log_codec.encode_clients clients))

let print_fsck (fr : Log_persist.fsck) =
  let v = fr.Log_persist.structural in
  Printf.printf "  snapshots: %d valid%s\n" (List.length v.Store.snapshots_ok)
    (match v.Store.snapshots_bad with
    | [] -> ""
    | l -> Printf.sprintf ", %d BAD (gens %s)" (List.length l)
             (String.concat "," (List.map string_of_int l)));
  List.iter (fun (g, n) -> Printf.printf "  wal.%06d: %d records, checksums ok\n" g n) v.Store.wal_ok;
  List.iter (fun (g, off) -> Printf.printf "  wal.%06d: TORN at byte %d\n" g off) v.Store.wal_torn;
  Printf.printf "  semantic: %d WAL ops replayed over %d clients\n" fr.Log_persist.wal_ops
    fr.Log_persist.clients;
  (match fr.Log_persist.issues with
  | [] -> print_endline "  invariants: hash chains, presig cursors, replay-match all hold"
  | l -> List.iter (fun i -> Printf.printf "  ISSUE: %s\n" i) l)

let fsck_run seed auths =
  Printf.printf "store fsck over a seeded workload (seed=%s, %d auths per method)\n" seed auths;
  let log, disk, dir = store_workload ~seed ~auths ~checkpoint_every:8 in
  let fr = Option.get (Log_service.fsck log) in
  print_fsck fr;
  let clean = Log_persist.fsck_clean fr in
  (* now rot one durable byte in a copy of the disk and show detection *)
  let img = Disk.dump disk in
  let wal_pick d =
    List.fold_left
      (fun best f -> match best with
        | Some b when Disk.size d ~file:b >= Disk.size d ~file:f -> best
        | _ -> if Disk.size d ~file:f > 0 then Some f else best)
      None
      (List.filter (fun f -> String.length f > 8 && String.sub f 0 8 = dir ^ "/wal.") (Disk.files d))
  in
  let wal_detected =
    match wal_pick (Disk.restore img) with
    | None -> false
    | Some file ->
        let d = Disk.restore img in
        Disk.corrupt d ~file ~pos:(Disk.size d ~file / 2);
        let v = Store.verify_disk d ~dir in
        Printf.printf "  bit rot injected mid-%s: %s\n" file
          (match v.Store.wal_torn with
          | (g, off) :: _ ->
              Printf.sprintf "checksum scan stops wal.%06d at byte %d — detected" g off
          | [] -> "NOT DETECTED");
        v.Store.wal_torn <> []
  in
  (* rot the newest snapshot: recovery must fall back a generation and
     replay the previous WAL to the byte-identical state *)
  let snap_ok =
    match List.rev fr.Log_persist.structural.Store.snapshots_ok with
    | [] ->
        print_endline "  (no snapshot yet at this workload size; skipping fallback check)";
        true
    | g :: _ ->
        let d = Disk.restore img in
        let file = Printf.sprintf "%s/snap.%06d" dir g in
        Disk.corrupt d ~file ~pos:(Disk.size d ~file / 2);
        let store' = Store.open_ ~disk:d ~dir () in
        let skipped = (Store.recovered store').Store.snapshots_skipped in
        let drbg' = Larch_hash.Drbg.create ~entropy:"larch-fsck-recheck" in
        let log' =
          Log_service.create ~store:store' ~rand_bytes:(fun n -> Larch_hash.Drbg.generate drbg' n) ()
        in
        let same = state_digest log'.Log_service.clients = state_digest log.Log_service.clients in
        Printf.printf
          "  bit rot injected in snap.%06d: recovery skipped %d snapshot(s), replayed prior \
           generation — state %s\n"
          g skipped
          (if same then "byte-identical" else "DIVERGED");
        skipped >= 1 && same
  in
  if clean && wal_detected && snap_ok then begin
    print_endline "  fsck: clean store verifies; every injected fault detected or recovered";
    0
  end
  else begin
    print_endline "  fsck: FAILED (see above)";
    1
  end

(* Kill the log at a WAL byte offset (record boundary, or mid-frame for a
   torn tail), recover from the disk image, fsck, and digest the replayed
   state. *)
let recover_run seed auths =
  Printf.printf "crash-point recovery sweep (seed=%s, %d auths per method)\n" seed auths;
  let sweep () =
    (* one generation for the whole run, so every record boundary in the
       history is a sweepable kill point *)
    let log, disk, dir = store_workload ~seed ~auths ~checkpoint_every:100_000 in
    let live = state_digest log.Log_service.clients in
    let img = Disk.dump disk in
    let store = Log_persist.store (Option.get (Log_service.persist log)) in
    let wal = Store.wal_file dir (Store.generation store) in
    let entries, valid_len, _ = Larch_store.Wal.scan disk ~file:wal in
    let boundaries =
      List.rev
        (List.fold_left
           (fun acc e -> (List.hd acc + Larch_store.Wal.frame_overhead + String.length e) :: acc)
           [ 0 ] entries)
    in
    let buf = Buffer.create 4096 in
    let clean = ref 0 and dirty = ref 0 in
    let kill offset =
      let d = Disk.restore img in
      Disk.truncate d ~file:wal offset;
      let store' = Store.open_ ~disk:d ~dir () in
      let r = Store.recovered store' in
      let drbg' = Larch_hash.Drbg.create ~entropy:"larch-recover-replay" in
      let log' =
        Log_service.create ~store:store' ~rand_bytes:(fun n -> Larch_hash.Drbg.generate drbg' n) ()
      in
      let fr = Option.get (Log_service.fsck log') in
      let ok = Log_persist.fsck_clean fr in
      if ok then incr clean else incr dirty;
      Buffer.add_string buf
        (Printf.sprintf "kill@%06d records=%d torn=%b clients=%d fsck=%s state=%s\n" offset
           (List.length r.Store.tail) r.Store.torn
           (Hashtbl.length log'.Log_service.clients)
           (if ok then "clean" else String.concat "; " fr.Log_persist.issues)
           (String.sub (state_digest log'.Log_service.clients) 0 16));
      state_digest log'.Log_service.clients
    in
    List.iter
      (fun off ->
        ignore (kill off);
        (* and a mid-frame kill: the next record half-written *)
        if off + 4 <= valid_len && off <> valid_len then ignore (kill (off + 4)))
      boundaries;
    let final = kill valid_len in
    Buffer.add_string buf (Printf.sprintf "live=%s final=%s\n" live final);
    ( hex (Larch_hash.Sha256.digest (Buffer.contents buf)),
      List.length boundaries,
      !clean,
      !dirty,
      final = live )
  in
  let d1, points, clean, dirty, replay_ok = sweep () in
  Printf.printf "  %d record boundaries (+ mid-frame variants): %d recoveries fsck-clean, %d dirty\n"
    points clean dirty;
  Printf.printf "  full-WAL replay %s the live state byte for byte\n"
    (if replay_ok then "matches" else "DOES NOT match");
  let d2, _, _, _, _ = sweep () in
  Printf.printf "  sweep digest %s\n" (String.sub d1 0 16);
  if d1 = d2 && dirty = 0 && replay_ok then begin
    print_endline "  deterministic: sweep 2 replayed sweep 1 byte for byte";
    Printf.printf "  reproduce with: larch recover --seed %s -n %d\n" seed auths;
    0
  end
  else begin
    if d1 <> d2 then print_endline "  NOT deterministic: sweeps differ";
    1
  end

(* --- the transparency layer: verified audits and split-view detection -- *)

module Merkle = Larch_merkle.Merkle

(* A seeded world narrating the Merkle transparency layer end to end:
   incremental verified audits with O(log n) proofs, a rollback caught by
   the client, and a forked multilog replica localized by pairwise
   consistency.  Returns (transcript, digest, all-checks-passed). *)
let audit_run ~(seed : string) ~(auths : int) : string * string * bool =
  Larch_util.Clock.set 1_700_000_000.;
  let drbg = Larch_hash.Drbg.create ~entropy:("larch-audit-" ^ seed) in
  let rand n = Larch_hash.Drbg.generate drbg n in
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let all_ok = ref true in
  let expect cond msg = if not cond then begin all_ok := false; line "  UNEXPECTED: %s" msg end in
  (* phase 1: one log, incremental verified audits *)
  line "single log: incremental verified audits (%d authentications)" auths;
  let log = Log_service.create ~rand_bytes:rand () in
  let client =
    Client.create ~client_id:"audit-user" ~account_password:"pw" ~log ~rand_bytes:rand ()
  in
  Client.enroll ~presignature_count:1 client;
  ignore (Client.register_password client ~rp_name:"rp.example");
  for i = 1 to auths do
    Larch_util.Clock.advance 60.;
    ignore (Client.authenticate_password client ~rp_name:"rp.example");
    let since = match client.Client.last_sth with Some s -> s.Merkle.Sth.size | None -> 0 in
    let resp = Log_service.audit_with_head ~since log ~client_id:"audit-user" ~token:"pw" in
    let proof_hashes =
      List.length resp.Log_service.consistency
      + List.fold_left (fun a p -> a + List.length p) 0 resp.Log_service.proofs
    in
    (match Client.audit_verified client with
    | Ok entries ->
        line "  auth %d: tree size=%d root=%s… delta=%d proof hashes=%d audit ok (%d entries)" i
          resp.Log_service.sth.Merkle.Sth.size
          (String.sub (hex resp.Log_service.sth.Merkle.Sth.root) 0 12)
          (List.length resp.Log_service.records) proof_hashes (List.length entries);
        expect (List.length entries = i) "verified history shorter than the auth count"
    | Error e ->
        all_ok := false;
        line "  auth %d: audit FAILED: %s" i e)
  done;
  (* phase 2: the log rolls back one record and re-derives chain + tree;
     the client's next verified audit must refuse *)
  line "rollback: the log drops the newest record and re-derives chain+tree";
  let cs = Log_service.get_client log "audit-user" in
  (match cs.Log_service.records with
  | _ :: rest -> cs.Log_service.records <- rest
  | [] -> ());
  Log_state.rebuild_derived cs;
  (match Client.audit_verified client with
  | Error e -> line "  detected: %s" e
  | Ok _ ->
      all_ok := false;
      line "  MISSED: rollback not detected");
  (* phase 3: three replicas, one forks; pairwise consistency localizes it *)
  line "multilog: 3 replicas, threshold 3";
  let ml = Multilog.create ~n:3 ~threshold:3 ~rand_bytes:rand () in
  let mc = Multilog.enroll ml ~client_id:"audit-user" ~account_password:"pw" in
  ignore (Multilog.register ml mc ~rp_name:"rp.example");
  for _ = 1 to auths do
    Larch_util.Clock.advance 60.;
    ignore (Multilog.authenticate ml mc ~rp_name:"rp.example" ~now:(Larch_util.Clock.now ()))
  done;
  let show_heads (sv : Multilog.split_view) =
    List.iter
      (fun (i, (h : Merkle.Sth.t)) ->
        line "  log%d: size=%d root=%s…" i h.Merkle.Sth.size (String.sub (hex h.Merkle.Sth.root) 0 12))
      sv.Multilog.heads
  in
  let sv = Multilog.check_split_view ml mc in
  show_heads sv;
  line "  %d pairs checked, %d inconsistent" sv.Multilog.checked_pairs
    (List.length sv.Multilog.bad_pairs);
  expect (sv.Multilog.bad_pairs = []) "honest replicas flagged as inconsistent";
  line "fork: log2 rewrites its copy of the history";
  let cs2 = Log_service.get_client ml.Multilog.logs.(2) "audit-user" in
  cs2.Log_service.records <-
    List.map (fun (r : Record.t) -> { r with Record.ip = "203.0.113.66" }) cs2.Log_service.records;
  Log_state.rebuild_derived cs2;
  let sv' = Multilog.check_split_view ml mc in
  show_heads sv';
  List.iter (fun (a, b) -> line "  inconsistent pair: log%d / log%d" a b) sv'.Multilog.bad_pairs;
  line "  suspects: %s"
    (match sv'.Multilog.suspects with
    | [] -> "none"
    | l -> String.concat " " (List.map (Printf.sprintf "log%d") l));
  expect (sv'.Multilog.suspects = [ 2 ]) "fork not localized to log2";
  Larch_util.Clock.use_real_time ();
  let transcript = Buffer.contents buf in
  (transcript, hex (Larch_hash.Sha256.digest transcript), !all_ok)

let audit_cli seed auths =
  Printf.printf "merkle transparency walk-through (seed=%s)\n" seed;
  let t1, d1, ok1 = audit_run ~seed ~auths in
  print_string t1;
  let _t2, d2, _ok2 = audit_run ~seed ~auths in
  Printf.printf "transcript digest run 1: %s\n" (String.sub d1 0 16);
  Printf.printf "transcript digest run 2: %s\n" (String.sub d2 0 16);
  if d1 = d2 && ok1 then begin
    print_endline "deterministic: run 2 replayed run 1 byte for byte";
    Printf.printf "reproduce with: larch audit --seed %s -n %d\n" seed auths;
    0
  end
  else begin
    if d1 <> d2 then print_endline "NOT deterministic: transcripts differ";
    if not ok1 then print_endline "FAILED: a transparency check did not hold";
    1
  end

(* --- the capacity report and the metric exporters ---------------------- *)

let report_run seed auths =
  let r1 = Report.run ~auths ~seed () in
  print_string r1.Report.text;
  let r2 = Report.run ~auths ~seed () in
  Printf.printf "digest run 1: %s\n" r1.Report.digest;
  Printf.printf "digest run 2: %s\n" r2.Report.digest;
  if r1.Report.digest = r2.Report.digest then begin
    print_endline "deterministic: run 2 reproduced run 1 byte for byte";
    Printf.printf "reproduce with: larch report --seed %s -n %d\n" seed auths;
    0
  end
  else begin
    print_endline "NOT deterministic: reports differ";
    1
  end

let sizes () =
  print_endline "byte-level protocol constants:";
  Printf.printf "  log presignature            %d B\n" Two_party_ecdsa.log_presig_bytes;
  Printf.printf "  FIDO2 auth record           %d B (ts 8 + nonce 12 + ct 32 + sig 64)\n" (8 + 12 + 32 + 64);
  Printf.printf "  TOTP auth record            %d B (ts 8 + nonce 12 + ct 16 + sig 64)\n" (8 + 12 + 16 + 64);
  Printf.printf "  password auth record        %d B (ts 8 + ElGamal 130)\n" (8 + 130);
  Printf.printf "  ECDSA signature             64 B;  point: 65 B / 33 B compressed\n";
  Printf.printf "  online signing messages     %d B per signature\n" (64 + 64 + 32 + 32 + 32 + 32 + 80 + 80);
  Printf.printf "  2P-Schnorr total            %d B per signature\n" Schnorr_signing.wire_bytes;
  0

let circuits () =
  print_endline "statement-circuit statistics:";
  let c = Lazy.force Larch_circuit.Larch_statements.fido2_circuit in
  Printf.printf "  FIDO2 statement: %d inputs, %d gates (%d AND), %d outputs\n"
    c.Larch_circuit.Circuit.n_inputs
    (Larch_circuit.Circuit.n_gates c)
    c.Larch_circuit.Circuit.n_and
    (Larch_circuit.Circuit.n_outputs c);
  List.iter
    (fun n ->
      let pub =
        Larch_circuit.Larch_statements.
          { cm = String.make 32 'c'; enc_nonce = String.make 12 'n'; time_counter = 1L }
      in
      let tc = Larch_circuit.Larch_statements.totp_circuit ~n_rps:n pub in
      Printf.printf "  TOTP 2PC (n=%-3d): %d inputs, %d gates (%d AND)\n" n
        tc.Larch_circuit.Circuit.n_inputs
        (Larch_circuit.Circuit.n_gates tc)
        tc.Larch_circuit.Circuit.n_and)
    [ 1; 20; 100 ];
  0

open Cmdliner

let scenario_arg =
  Arg.(required & pos 0 (some (enum [
    ("fido2", `Fido2); ("totp", `Totp); ("password", `Password);
    ("multilog", `Multilog); ("compromise", `Compromise); ("recovery", `Recovery) ])) None
    & info [] ~docv:"SCENARIO")

let n_arg =
  Arg.(value & opt int 8 & info [ "n" ] ~doc:"Number of registered relying parties.")

let run_scenario scenario n =
  match scenario with
  | `Fido2 -> demo_fido2 ()
  | `Totp -> demo_totp (max 1 n)
  | `Password -> demo_password (max 1 n)
  | `Multilog -> demo_multilog ()
  | `Compromise -> demo_compromise ()
  | `Recovery -> demo_recovery ()

let demo_cmd =
  Cmd.v (Cmd.info "demo" ~doc:"Run a narrated end-to-end scenario")
    Term.(const run_scenario $ scenario_arg $ n_arg)

let metrics_run scenario n format =
  Obs.Runtime.enable_all ();
  Obs.Trace.reset ();
  Obs.Events.clear ();
  Obs.Metrics.reset Obs.Metrics.default;
  let rc = run_scenario scenario n in
  print_newline ();
  (match format with
  | `Prom ->
      print_endline "-- prometheus exposition --------------------------------";
      print_string (Obs.Export.prometheus Obs.Metrics.default)
  | `Json -> print_endline (Obs.Export.json Obs.Metrics.default));
  Obs.Runtime.disable_all ();
  rc

(* Run a demo with tracing, metrics, and the event stream enabled, then
   print all three views (and optionally a Chrome trace_event file). *)
let trace_cmd =
  let json =
    Arg.(value & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the span tree as Chrome trace_event JSON (load in \
                chrome://tracing or Perfetto).")
  in
  let run scenario n json =
    Obs.Runtime.enable_all ();
    Obs.Trace.reset ();
    Obs.Events.clear ();
    let rc = run_scenario scenario n in
    print_newline ();
    print_endline "-- spans ------------------------------------------------";
    print_string (Obs.Trace.report ());
    print_newline ();
    print_endline "-- metrics ----------------------------------------------";
    print_string (Obs.Metrics.report Obs.Metrics.default);
    print_newline ();
    print_endline "-- log-service events (no relying-party names, ever) ----";
    List.iter (fun e -> print_endline ("  " ^ Obs.Events.to_string e)) (Obs.Events.recent ());
    let rc =
      match json with
      | None -> rc
      | Some file -> (
          try
            Obs.Trace.write_chrome_json file;
            Printf.printf "\nchrome trace written to %s\n" file;
            rc
          with Sys_error msg ->
            Printf.eprintf "larch: cannot write trace: %s\n" msg;
            1)
    in
    Obs.Runtime.disable_all ();
    rc
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Run a demo under the observability layer")
    Term.(const run $ scenario_arg $ n_arg $ json)

let faults_cmd =
  let seed =
    Arg.(value & opt string "42" & info [ "seed" ] ~docv:"SEED"
      ~doc:"Fault-injection seed; the same seed replays the same faults, retries, and records.")
  in
  let auths =
    Arg.(value & opt int 4 & info [ "n" ] ~doc:"Authentications per method under fault injection.")
  in
  Cmd.v
    (Cmd.info "faults" ~doc:"Run a seeded faulty-transport world twice and compare transcripts")
    Term.(const faults $ seed $ auths)

let swarm_cmd =
  let seed =
    Arg.(value & opt string "42" & info [ "seed" ] ~docv:"SEED"
      ~doc:"Scheduler seed; the same seed replays the same interleaving, faults, and \
            transcript byte for byte.")
  in
  let sessions =
    Arg.(value & opt int 16 & info [ "n" ] ~doc:"Concurrent sessions (fibers).")
  in
  let clean =
    Arg.(value & flag & info [ "clean" ]
      ~doc:"Disable per-session fault injectors (keep the 20ms RTT link).")
  in
  Cmd.v
    (Cmd.info "swarm"
       ~doc:"Run N concurrent mixed-protocol session fibers over the simulated link \
             against one admission-loop log — twice, digest-compared")
    Term.(const swarm $ seed $ sessions $ clean)

let overload_cmd =
  let seed =
    Arg.(value & opt string "42" & info [ "seed" ] ~docv:"SEED"
      ~doc:"Scenario seed; the same seed replays every shed, retry, and brownout \
            transition byte for byte.")
  in
  let fast =
    Arg.(value & flag & info [ "fast" ]
      ~doc:"Run only the 1x and 4x worlds (the smoke-test configuration).")
  in
  Cmd.v
    (Cmd.info "overload"
       ~doc:"Drive the admission-controlled log at 1x/2x/4x its capacity: bounded \
             admission, deadline shedding, per-client rate limits, retry budgets, and \
             brownout degradation — each world run twice, digest-compared, with goodput \
             and invariant checks")
    Term.(const overload_run $ seed $ fast)

let store_seed_arg =
  Arg.(value & opt string "42" & info [ "seed" ] ~docv:"SEED"
    ~doc:"Workload seed; the same seed replays the same WAL and the same sweep.")

let store_auths_arg =
  Arg.(value & opt int 2 & info [ "n" ] ~doc:"Authentications per method in the seeded workload.")

let fsck_cmd =
  Cmd.v
    (Cmd.info "fsck"
       ~doc:"Verify a store: frame checksums, record hash chains, presignature cursor \
             monotonicity, live-vs-replayed state match; then inject bit rot and show \
             detection and snapshot-fallback recovery")
    Term.(const fsck_run $ store_seed_arg $ store_auths_arg)

let recover_cmd =
  Cmd.v
    (Cmd.info "recover"
       ~doc:"Deterministic crash-point sweep: kill the log at every WAL record boundary \
             (and mid-frame), recover, fsck, and digest the replayed state")
    Term.(const recover_run $ store_seed_arg $ store_auths_arg)

let audit_cmd =
  let seed =
    Arg.(value & opt string "42" & info [ "seed" ] ~docv:"SEED"
      ~doc:"Workload seed; the same seed reproduces the same transcript byte for byte.")
  in
  let auths =
    Arg.(value & opt int 3 & info [ "n" ] ~doc:"Authentications before each tampering phase.")
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:"Walk the Merkle transparency layer: incremental verified audits with O(log n) \
             proofs, a rollback caught by the client, and a forked replica localized by \
             pairwise split-view detection — run twice, digest-compared")
    Term.(const audit_cli $ seed $ auths)

let report_cmd =
  let seed =
    Arg.(value & opt string "42" & info [ "seed" ] ~docv:"SEED"
      ~doc:"Workload seed; the same seed reproduces the same report byte for byte.")
  in
  let auths =
    Arg.(value & opt int 4 & info [ "n" ] ~doc:"Authentications per method in the calm phase.")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Run the seeded mixed enroll/auth/audit capacity workload twice and print the \
             reproducible report: per-protocol p50/p99/p99.9 latency, presignature \
             depletion, storm-segment failure totals, WAL growth vs checkpoint cadence")
    Term.(const report_run $ seed $ auths)

let metrics_cmd =
  let scenario =
    Arg.(value & pos 0 (enum [
      ("fido2", `Fido2); ("totp", `Totp); ("password", `Password);
      ("multilog", `Multilog); ("compromise", `Compromise); ("recovery", `Recovery) ]) `Fido2
      & info [] ~docv:"SCENARIO")
  in
  let format =
    Arg.(value & opt (enum [ ("prom", `Prom); ("json", `Json) ]) `Prom
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:"Exposition format: Prometheus text ($(b,prom)) or canonical JSON ($(b,json)).")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:"Run a demo with instrumentation on, then print the metrics registry in \
             Prometheus or canonical JSON exposition (no relying-party identifiers, ever)")
    Term.(const metrics_run $ scenario $ n_arg $ format)

let sizes_cmd = Cmd.v (Cmd.info "sizes" ~doc:"Print protocol byte constants") Term.(const sizes $ const ())
let circuits_cmd = Cmd.v (Cmd.info "circuits" ~doc:"Print statement-circuit statistics") Term.(const circuits $ const ())

let () =
  let doc = "larch: accountable authentication with privacy protection" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "larch" ~doc)
          [ demo_cmd; trace_cmd; faults_cmd; swarm_cmd; overload_cmd; fsck_cmd; recover_cmd;
            audit_cmd; report_cmd; metrics_cmd; sizes_cmd; circuits_cmd ]))
